"""The async serving tier: many resident sessions, one entry point.

:class:`Service` multiplexes concurrent clients over a
:class:`~repro.serve.pool.SessionPool` of resident
:class:`~repro.api.TCIMSession` objects:

* **reads** (:meth:`Service.count`, :meth:`Service.simulate`,
  :meth:`Service.slice_stats`, :meth:`Service.baseline`, and the
  workload queries :meth:`Service.support`, :meth:`Service.truss`,
  :meth:`Service.cluster`, :meth:`Service.common_neighbors`) are served
  from each session's resident caches; identical in-flight reads against
  the same session *coalesce* onto one executor job (keyed by the
  session's mutation generation — and, for argument-bearing workloads,
  per op + arguments — so a read never coalesces across an update or
  across different arguments);
* **writes** (:meth:`Service.apply`) serialise per session behind an
  ``asyncio.Lock`` — an apply stream can never interleave with another
  apply on the same graph — while applies on *different* sessions
  interleave freely;
* all CPU-bound engine work runs on a shared thread worker pool, so the
  event loop stays responsive and independent sessions' numpy kernels
  overlap.

Three serving-scale facilities are layered on top (all off by default,
so a plain ``Service()`` behaves exactly as before):

* **cross-session query fusion** (``fuse_window_ms``): instead of one
  executor job per read, compatible reads that arrive within the window
  are grouped — across *different* sessions — and executed as **one**
  gather→AND→popcount sweep over the concatenated per-session join
  plans (:func:`repro.core.kernels.execute_fused`).  Probe-style reads
  (``common_neighbors``/``common_neighbors_many``) additionally merge
  per session, so a window's worth of probes against one graph compiles
  a single batched join instead of one per request.  Every fused commit
  is fenced by the session's mutation generation: a concurrent
  ``apply`` invalidates the in-flight group for that session and its
  requests transparently re-run per-request, so fused results are
  always bit-identical to unfused serving;
* **bounded admission** (``max_queue``): at most that many requests may
  be in flight; excess requests are either rejected with
  :class:`~repro.errors.OverloadedError` (``admission="reject"``) or
  parked FIFO until a slot frees (``admission="block"``);
* **hot-graph replication** (``replicas``): the pool may hold up to N
  read replicas per entry and fan pure reads across them; writes land
  on the primary and fence the replicas by generation.

Every piece of engine work a session performs for the service — the
residency-establishing first run, post-update re-runs (priced once per
generation), and each incremental delta re-join — accumulates into the
entry's merged :class:`EventCounts`.  :meth:`Service.report` prices that
fleet through :func:`repro.arch.pipeline.measured_fleet_report`: the
aggregate throughput, per-session critical paths, and pool occupancy of
the whole serving run.

Usage::

    from repro.serve import open_service

    async def main():
        async with open_service(max_sessions=8) as service:
            count = await service.count("dataset:com-dblp@0.05")
            await service.apply("dataset:com-dblp@0.05", [("+", 0, 1)])
            print(service.report().queries_per_second)
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from functools import partial

import numpy as np

from repro.api import RunReport, UpdateReport
from repro.core import kernels
from repro.core.accelerator import EventCounts
from repro.core.slicing import SliceStatistics
from repro.errors import OverloadedError, ReproError
from repro.serve.pool import PoolStats, SessionEntry, SessionPool

__all__ = [
    "SessionServeStats",
    "ServiceReport",
    "Service",
    "open_service",
]


@dataclass
class _FusionRequest:
    """One read parked in the fusion window, waiting for its sweep."""

    entry: SessionEntry
    kind: str
    #: Fusion class: ``"count"`` | ``"supports"`` | ``"pairs"``.
    klass: str
    #: Op-specific payload — for ``"pairs"``: ``("pair", u, v)``,
    #: ``("cand", u, k)`` or ``("many", pairs)``.
    spec: object
    #: The per-request work fn: the fallback when the sweep is fenced.
    work: object
    future: asyncio.Future


@dataclass
class SessionServeStats:
    """Serving statistics of one (possibly evicted) resident session."""

    key: str
    queries: int
    by_kind: dict[str, int]
    ops_applied: int
    events: EventCounts
    resident_bytes: int
    #: Share of ``resident_bytes`` held by the compiled join plan — the
    #: memory the pool spends to make this session's repeat reads
    #: near-free (see docs/API.md, "Join plans").
    plan_bytes: int = 0
    #: Modelled critical path of this session's accumulated engine work.
    latency_s: float = 0.0
    #: ``TCIMSession.resident_bytes_detail()`` breakdown — slices, plan,
    #: sym_plan, edges, graph, shards (self-contained coloring shard
    #: contexts), spilled (disk-backed share) and total.  Empty for
    #: evicted entries (their residency is gone).
    resident_detail: dict = field(default_factory=dict)
    #: ``TCIMSession.shard_residency()`` — one entry per resident
    #: coloring :class:`~repro.core.sharding.ShardContext` (shard id,
    #: owned color triple, owned edges, resident bytes).  Empty unless
    #: the session shards by coloring.
    shards: list = field(default_factory=list)

    def to_mapping(self) -> dict:
        return {
            "key": self.key,
            "queries": self.queries,
            "by_kind": dict(self.by_kind),
            "ops_applied": self.ops_applied,
            "events": asdict(self.events),
            "resident_bytes": self.resident_bytes,
            "plan_bytes": self.plan_bytes,
            "latency_s": self.latency_s,
            "resident_detail": dict(self.resident_detail),
            "shards": [dict(shard) for shard in self.shards],
        }


@dataclass
class ServiceReport:
    """Aggregate outcome of a serving run, priced through ``arch/perf``.

    ``fleet`` is the measured fleet :class:`~repro.arch.perf.PerfReport`
    (critical path = slowest session, per-group leakage); it is ``None``
    until any session has performed engine work.
    """

    wall_clock_s: float
    queries: int
    queries_per_second: float
    #: Reads answered by an already in-flight identical computation.
    coalesced: int
    sessions: list[SessionServeStats] = field(default_factory=list)
    fleet: object | None = None  # arch.perf.PerfReport, imported lazily
    pool: PoolStats = field(default_factory=PoolStats)
    resident: int = 0
    max_sessions: int = 0
    resident_bytes: int = 0
    # --- fusion / admission / replication (PR 7) ----------------------
    #: Requests currently inside the service (admitted + parked).
    queue_depth: int = 0
    #: Requests rejected with ``OverloadedError`` (admission="reject").
    shed: int = 0
    #: Fused sweeps executed (each is one kernel launch for its group).
    fused_batches: int = 0
    #: Reads routed through the fusion scheduler.
    fused_reads: int = 0
    #: Largest request group a single fused sweep served.
    max_fused_batch: int = 0
    #: Fused commits discarded by a concurrent mutation's generation
    #: fence (those requests transparently re-ran per-request).
    fenced: int = 0
    #: Engine-work dispatches (per-request jobs + applies + fused
    #: sweeps); what :func:`~repro.arch.perf.evaluate_fleet` amortises
    #: its per-launch cost over.
    kernel_launches: int = 0
    #: Read replicas currently built across resident entries.
    replicas: int = 0

    @property
    def occupancy(self) -> float:
        """Resident sessions over capacity (1.0 = full pool)."""
        return self.resident / self.max_sessions if self.max_sessions else 0.0

    def to_mapping(self) -> dict:
        payload = {
            "wall_clock_s": self.wall_clock_s,
            "queries": self.queries,
            "queries_per_second": self.queries_per_second,
            "coalesced": self.coalesced,
            "sessions": [stats.to_mapping() for stats in self.sessions],
            "pool": asdict(self.pool),
            "resident": self.resident,
            "max_sessions": self.max_sessions,
            "occupancy": self.occupancy,
            "resident_bytes": self.resident_bytes,
            "queue_depth": self.queue_depth,
            "shed": self.shed,
            "fused_batches": self.fused_batches,
            "fused_reads": self.fused_reads,
            "max_fused_batch": self.max_fused_batch,
            "fenced": self.fenced,
            "kernel_launches": self.kernel_launches,
            "replicas": self.replicas,
        }
        if self.fleet is not None:
            payload["fleet"] = {
                "latency_s": self.fleet.latency_s,
                "array_energy_j": self.fleet.array_energy_j,
                "system_energy_j": self.fleet.system_energy_j,
                "latency_breakdown_s": dict(self.fleet.latency_breakdown_s),
            }
        return payload


class Service:
    """Async front door over a pool of resident sessions.

    Construct directly or via :func:`open_service`.  ``config`` and
    ``overrides`` set the default accelerator configuration for sessions
    the service opens; per-request configs key separate pool entries.
    ``record_journal=True`` keeps each session's applied op batches in
    execution order — the hook the differential serving tests replay.

    The service is an async context manager; :meth:`close` drains the
    worker pool and evicts every resident session.
    """

    def __init__(
        self,
        pool: SessionPool | None = None,
        *,
        max_sessions: int = 8,
        max_resident_bytes: int | None = None,
        max_workers: int | None = None,
        model=None,
        config=None,
        record_journal: bool = False,
        fuse_window_ms: float | None = None,
        max_queue: int | None = None,
        admission: str = "reject",
        replicas: int = 0,
        **overrides,
    ) -> None:
        if fuse_window_ms is not None and fuse_window_ms < 0:
            raise ReproError(
                f"fuse_window_ms must be >= 0, got {fuse_window_ms}"
            )
        if max_queue is not None and max_queue < 1:
            raise ReproError(f"max_queue must be >= 1, got {max_queue}")
        if admission not in ("reject", "block"):
            raise ReproError(
                f"admission must be 'reject' or 'block', got {admission!r}"
            )
        if replicas < 0:
            raise ReproError(f"replicas must be >= 0, got {replicas}")
        if pool is not None and (
            max_sessions != 8
            or max_resident_bytes is not None
            or config is not None
            or overrides
        ):
            # Silently dropping these would leave e.g. a "memory budget"
            # the operator believes is active but the pool never saw.
            raise ReproError(
                "pass pool configuration (max_sessions/max_resident_bytes/"
                "config/overrides) either to the SessionPool or to the "
                "Service, not both"
            )
        self._pool = pool or SessionPool(
            max_sessions,
            max_resident_bytes,
            config=config,
            model=model,
            **overrides,
        )
        self._model = model
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="tcim-serve"
        )
        self._record_journal = record_journal
        #: key -> [asyncio.Lock, active-user count]; pruned when idle.
        self._acquire_locks: dict[str, list] = {}
        self._started = time.perf_counter()
        self._queries = 0
        self._coalesced = 0
        self._closed = False
        # --- fusion scheduler ---------------------------------------
        self._fuse_window_ms = fuse_window_ms
        self._fuse_window_s = (
            None if fuse_window_ms is None else fuse_window_ms / 1000.0
        )
        self._fusion_pending: list[_FusionRequest] = []
        self._fusion_wake: asyncio.Event | None = None
        self._fusion_task: asyncio.Task | None = None
        self._fusion_groups: set = set()
        # --- admission control --------------------------------------
        self._max_queue = max_queue
        self._admission = admission
        self._admitted = 0
        self._admission_waiters: deque = deque()
        self._shed = 0
        # --- replication / counters ---------------------------------
        self._replicas = replicas
        #: Guards the counters below against fused worker threads.
        self._stats_lock = threading.Lock()
        self._fused_batches = 0
        self._fused_reads = 0
        self._max_fused_batch = 0
        self._fenced = 0
        self._launches = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "Service":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        """Drain in-flight work, shut the worker pool, evict all sessions."""
        if self._closed:
            return
        self._closed = True
        # Drain the fusion scheduler first: wake it so it flushes any
        # parked requests (their futures must resolve before the worker
        # pool they run on shuts down).
        while self._fusion_task is not None and not self._fusion_task.done():
            self._fusion_wake.set()
            await self._fusion_task
        if self._fusion_groups:
            await asyncio.gather(
                *list(self._fusion_groups), return_exceptions=True
            )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, partial(self._executor.shutdown, wait=True))
        self._pool.close()

    @property
    def pool(self) -> SessionPool:
        """The underlying session pool."""
        return self._pool

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    async def count(self, source, config=None, **overrides) -> int:
        """Exact triangle count (incrementally maintained across applies)."""
        return await self._read(
            source,
            config,
            overrides,
            "count",
            self._count_work,
            fusion=("count", None),
        )

    async def simulate(self, source, config=None, **overrides) -> RunReport:
        """Full priced run on the resident structures (cached per generation)."""
        return await self._read(
            source, config, overrides, "simulate", self._simulate_work
        )

    async def slice_stats(self, source, config=None, **overrides) -> SliceStatistics:
        """Table III/IV compression statistics of the resident structures."""
        return await self._read(
            source, config, overrides, "slice_stats", self._slice_stats_work
        )

    async def baseline(self, source, name: str, config=None, **overrides) -> int:
        """Triangle count via a registered software baseline."""
        return await self._read(
            source,
            config,
            overrides,
            f"baseline:{name}",
            partial(self._baseline_work, name=name),
        )

    async def support(self, source, config=None, **overrides) -> dict:
        """Per-edge triangle supports via the session's workload kernel.

        Returns a JSON-able mapping with the support histogram and
        totals (the full per-edge map lives in the session; clients
        wanting individual edges use ``common_neighbors``).
        """
        return await self._read(
            source,
            config,
            overrides,
            "support",
            self._support_work,
            fusion=("supports", None),
        )

    async def truss(self, source, k=None, config=None, **overrides) -> dict:
        """Truss decomposition summary (optionally the k-truss edge count).

        Coalescing is keyed per ``k``: two in-flight ``truss(k=3)``
        queries share one computation, while ``truss()`` and
        ``truss(k=3)`` run independently.
        """
        kind = "truss" if k is None else f"truss:{int(k)}"
        return await self._read(
            source,
            config,
            overrides,
            kind,
            partial(self._truss_work, k=k),
            fusion=("supports", None),
        )

    async def cluster(self, source, config=None, **overrides) -> dict:
        """Clustering metrics from the session's per-vertex tally workload."""
        return await self._read(
            source,
            config,
            overrides,
            "cluster",
            self._cluster_work,
            fusion=("supports", None),
        )

    async def common_neighbors(
        self, source, u: int, v=None, k=None, config=None, **overrides
    ) -> dict:
        """Common-neighbor scores from vertex ``u`` (pair score or top-k).

        Coalescing is keyed per ``(u, v, k)`` triple, so repeated
        identical link-prediction probes against an unchanged session
        share one kernel run.
        """
        kind = f"common_neighbors:{int(u)}:{v}:{k}"
        spec = ("pair", u, v) if v is not None else ("cand", u, k)
        return await self._read(
            source,
            config,
            overrides,
            kind,
            partial(self._common_neighbors_work, u=u, v=v, k=k),
            fusion=("pairs", spec),
        )

    async def common_neighbors_many(
        self, source, pairs, config=None, **overrides
    ) -> dict:
        """Batched common-neighbor scores for many ``(u, v)`` probes.

        The whole batch compiles one join and runs one kernel pass
        (:meth:`~repro.api.TCIMSession.common_neighbors_many`); under a
        fusion window, batches from different clients — and different
        *sessions* — additionally merge into a single fused sweep.
        Returns ``{"pairs": n, "scores": [...]}`` with scores in probe
        order.  Coalescing is keyed by a digest of the probe list.
        """
        pairs = [
            tuple(pair) if isinstance(pair, (list, tuple)) else pair
            for pair in pairs
        ]
        digest = hashlib.blake2b(
            repr(pairs).encode(), digest_size=12
        ).hexdigest()
        return await self._read(
            source,
            config,
            overrides,
            f"common_neighbors_many:{digest}",
            partial(self._cn_many_work, pairs=pairs),
            fusion=("pairs", ("many", pairs)),
        )

    async def apply(
        self, source, ops, config=None, *, record: bool = False, **overrides
    ) -> UpdateReport:
        """Apply one ordered update stream to the resident session.

        Applies to the same session run strictly one at a time, in
        arrival order at the session's write lock; applies to different
        sessions interleave across the worker pool.
        """
        ops = list(ops)
        await self._admit()
        try:
            entry = await self._checkout(source, config, overrides)
            try:
                entry.count_query("apply")
                if entry.write_lock is None:
                    entry.write_lock = asyncio.Lock()
                loop = asyncio.get_running_loop()
                async with entry.write_lock:
                    with self._stats_lock:
                        self._launches += 1
                    report = await loop.run_in_executor(
                        self._executor,
                        partial(self._apply_work, entry, ops, record),
                    )
                self._queries += 1
                return report
            finally:
                self._release(entry)
        finally:
            self._discharge()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> ServiceReport:
        """Aggregate serving report, priced through the performance model."""
        wall = time.perf_counter() - self._started
        resident_stats = [
            self._snapshot(entry, resident=True) for entry in self._pool.entries()
        ]
        retired_stats = [
            self._snapshot(entry, resident=False) for entry in self._pool.retired()
        ]
        stats = resident_stats + retired_stats
        active = [s for s in stats if any(asdict(s.events).values())]
        fleet = None
        if active:
            from repro.arch.perf import default_pim_model
            from repro.arch.pipeline import measured_fleet_report

            model = self._model or default_pim_model()
            for session_stats in active:
                session_stats.latency_s = model.evaluate(
                    session_stats.events
                ).latency_s
            # The fleet figure models the *currently resident* groups
            # operating concurrently; evicted sessions' array groups no
            # longer exist, so pricing them as co-resident would inflate
            # leakage and the critical path.  They keep their individual
            # latency_s in the sessions list.
            co_resident = [
                s for s in resident_stats if any(asdict(s.events).values())
            ]
            if co_resident:
                fleet = measured_fleet_report(
                    [s.events for s in co_resident],
                    base_model=model,
                    launches=self._launches,
                )
        with self._stats_lock:
            fused_batches = self._fused_batches
            fused_reads = self._fused_reads
            max_fused_batch = self._max_fused_batch
            fenced = self._fenced
            launches = self._launches
        return ServiceReport(
            wall_clock_s=wall,
            queries=self._queries,
            queries_per_second=self._queries / wall if wall > 0 else 0.0,
            coalesced=self._coalesced,
            sessions=stats,
            fleet=fleet,
            # Copy: the report is a snapshot, not a live view that later
            # pool activity (e.g. close()'s evictions) keeps mutating.
            pool=PoolStats(**asdict(self._pool.stats)),
            resident=self._pool.resident,
            max_sessions=self._pool.max_sessions,
            resident_bytes=self._pool.resident_bytes(),
            queue_depth=self._admitted + len(self._admission_waiters),
            shed=self._shed,
            fused_batches=fused_batches,
            fused_reads=fused_reads,
            max_fused_batch=max_fused_batch,
            fenced=fenced,
            kernel_launches=launches,
            replicas=self._pool.replica_count(),
        )

    def stats(self) -> dict:
        """Cheap live scheduler counters (the protocol's ``stats`` op).

        Unlike :meth:`report` this takes no session locks and prices
        nothing — it is safe to poll from a monitoring loop while the
        service is saturated.
        """
        with self._stats_lock:
            fused_batches = self._fused_batches
            fused_reads = self._fused_reads
            max_fused_batch = self._max_fused_batch
            fenced = self._fenced
            launches = self._launches
        return {
            "queries": self._queries,
            "coalesced": self._coalesced,
            "queue_depth": self._admitted + len(self._admission_waiters),
            "waiting": len(self._admission_waiters),
            "max_queue": self._max_queue,
            "admission": self._admission,
            "shed": self._shed,
            "fuse_window_ms": self._fuse_window_ms,
            "pending_fusion": len(self._fusion_pending),
            "fused_batches": fused_batches,
            "fused_reads": fused_reads,
            "max_fused_batch": max_fused_batch,
            "fenced": fenced,
            "kernel_launches": launches,
            "replicas": self._pool.replica_count(),
            "resident": self._pool.resident,
            # Out-of-core paging traffic (see repro.serve.pool): eviction
            # snapshots written, warm hydrations served, and the payload
            # bytes currently paged out to the spill directory.
            "snapshots_written": self._pool.stats.snapshots_written,
            "hydrations": self._pool.stats.hydrations,
            "spilled_bytes": self._pool.stats.spilled_bytes,
            # Zero-copy execution plane: bytes pooled sessions hold in
            # named shared-memory segments (backing="shm").
            "shared_bytes": self._pool.shared_bytes(),
        }

    def journal(self, source, config=None, **overrides) -> list:
        """The recorded op batches of one session key, in execution order.

        Requires ``record_journal=True``.  A key that was evicted and
        re-acquired has history on both the retired entries and the
        resident one; the returned stream concatenates them in eviction
        order, so replaying it from the base graph reproduces the
        session's current state.  (Retired entries are retained up to a
        bound — journal replay is a testing facility, not durable
        storage.)  Raises if the key has never been served.
        """
        if not self._record_journal:
            raise ReproError("journal recording is off; open the Service "
                             "with record_journal=True")
        key = self._pool.key_for(source, config, overrides)
        batches: list = []
        seen = False
        for entry in self._pool.retired() + self._pool.entries():
            if entry.key == key:
                seen = True
                batches.extend(entry.journal)
        if not seen:
            raise ReproError(f"no session for key {key!r}")
        return batches

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    async def _checkout(self, source, config, overrides) -> SessionEntry:
        if self._closed:
            raise ReproError("service is closed")
        key = self._pool.key_for(source, config, overrides)
        # Hot path: a resident hit is one short lock hold — take it
        # inline instead of paying an executor round trip per request.
        entry = self._pool.acquire_hit(key)
        if entry is not None:
            return entry
        # Serialise acquires per key so a pool miss is built exactly once
        # even when many clients hit a cold key simultaneously.  Slots
        # are refcounted and dropped when idle, so a long-running server
        # doesn't accumulate one lock per key it has ever seen.
        slot = self._acquire_locks.get(key)
        if slot is None:
            slot = self._acquire_locks[key] = [asyncio.Lock(), 0]
        slot[1] += 1
        loop = asyncio.get_running_loop()
        try:
            async with slot[0]:
                return await loop.run_in_executor(
                    self._executor,
                    partial(self._pool.acquire, source, config, **overrides),
                )
        finally:
            slot[1] -= 1
            if slot[1] == 0 and self._acquire_locks.get(key) is slot:
                del self._acquire_locks[key]

    def _release(self, entry: SessionEntry) -> None:
        """Return the lease off the event loop.

        Release can evict (closing a session, snapshotting its graph) and
        the byte-budget check sums ``resident_bytes`` under session
        locks, so it runs on the worker pool; inline only as a fallback
        while the executor is shutting down.
        """
        try:
            self._executor.submit(self._pool.release, entry)
        except RuntimeError:
            self._pool.release(entry)

    async def _read(
        self, source, config, overrides, kind: str, work, fusion=None
    ) -> object:
        await self._admit()
        try:
            entry = await self._checkout(source, config, overrides)
            try:
                entry.count_query(kind)
                loop = asyncio.get_running_loop()
                # The service-maintained generation mirror: reading the
                # real session.generation here would block the event loop
                # behind an in-flight apply's session lock.
                generation = entry.known_generation
                slot = entry.inflight.get(kind)
                if (
                    slot is not None
                    and slot[0] == generation
                    and not slot[1].done()
                ):
                    # Identical read already computing against the same
                    # resident state: join it, don't queue a duplicate.
                    self._coalesced += 1
                    future = slot[1]
                elif (
                    fusion is not None
                    and self._fuse_window_s is not None
                    and not self._closed
                    and entry.session.config.num_arrays == 1
                ):
                    future = self._enqueue_fused(entry, kind, fusion, work)
                    entry.inflight[kind] = (generation, future)
                else:
                    with self._stats_lock:
                        self._launches += 1
                    future = loop.run_in_executor(
                        self._executor, partial(work, entry)
                    )
                    entry.inflight[kind] = (generation, future)
                result = await future
                self._queries += 1
                return result
            finally:
                self._release(entry)
        finally:
            self._discharge()

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    async def _admit(self) -> None:
        """Take an admission slot (or shed/park the request).

        Unbounded (``max_queue=None``) is a no-op.  ``"reject"`` raises
        :class:`OverloadedError` deterministically once ``max_queue``
        requests are in flight; ``"block"`` parks the caller on a FIFO
        queue and :meth:`_discharge` hands slots over in arrival order.
        """
        if self._max_queue is None:
            return
        if self._admitted < self._max_queue:
            self._admitted += 1
            return
        if self._admission == "reject":
            self._shed += 1
            raise OverloadedError(
                f"admission queue full: {self._admitted} requests in "
                f"flight (max_queue={self._max_queue}); retry later or "
                "serve with admission='block'"
            )
        waiter = asyncio.get_running_loop().create_future()
        self._admission_waiters.append(waiter)
        try:
            await waiter  # a finishing request hands its slot over
        except asyncio.CancelledError:
            if waiter.done() and not waiter.cancelled():
                self._discharge()  # slot arrived anyway; pass it on
            else:
                try:
                    self._admission_waiters.remove(waiter)
                except ValueError:
                    pass
            raise

    def _discharge(self) -> None:
        """Return an admission slot, waking the oldest parked request."""
        if self._max_queue is None:
            return
        while self._admission_waiters:
            waiter = self._admission_waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)  # slot transferred, count unchanged
                return
        self._admitted -= 1

    # ------------------------------------------------------------------
    # Cross-session query fusion
    # ------------------------------------------------------------------
    def _enqueue_fused(self, entry, kind, fusion, work) -> asyncio.Future:
        """Park one read in the fusion window; resolves via its sweep."""
        klass, spec = fusion
        future = asyncio.get_running_loop().create_future()
        self._fusion_pending.append(
            _FusionRequest(entry, kind, klass, spec, work, future)
        )
        with self._stats_lock:
            self._fused_reads += 1
        if self._fusion_task is None or self._fusion_task.done():
            if self._fusion_wake is None:
                self._fusion_wake = asyncio.Event()
            self._fusion_task = asyncio.get_running_loop().create_task(
                self._fusion_loop()
            )
        self._fusion_wake.set()
        return future

    async def _fusion_loop(self) -> None:
        """Drain the pending queue: wait, window, group, sweep.

        Requests arriving while the window sleeps join the same drain —
        that is the window.  The window is adaptive: it sleeps in
        quarter-window slices and drains as soon as a slice brings no new
        arrivals, so a burst that lands entirely in the first slice is
        not taxed the full window, while a steady trickle still
        accumulates up to the configured bound.  Each drained batch is
        grouped by (fusion class, slice width) and every group becomes
        one fused sweep on the worker pool; groups run concurrently with
        the next window.
        """
        while True:
            await self._fusion_wake.wait()
            self._fusion_wake.clear()
            if self._fuse_window_s:
                loop = asyncio.get_running_loop()
                deadline = loop.time() + self._fuse_window_s
                seen = len(self._fusion_pending)
                while True:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    await asyncio.sleep(min(remaining, self._fuse_window_s / 4))
                    arrived = len(self._fusion_pending)
                    if arrived == seen:
                        break
                    seen = arrived
            batch, self._fusion_pending = self._fusion_pending, []
            groups: dict = {}
            for request in batch:
                key = (request.klass, request.entry.session.config.slice_bits)
                groups.setdefault(key, []).append(request)
            for group in groups.values():
                task = asyncio.ensure_future(self._run_fused_group(group))
                self._fusion_groups.add(task)
                task.add_done_callback(self._fusion_groups.discard)
            if self._closed and not self._fusion_pending:
                return

    async def _run_fused_group(self, group: list) -> None:
        with self._stats_lock:
            self._max_fused_batch = max(self._max_fused_batch, len(group))
        loop = asyncio.get_running_loop()
        try:
            outcomes = await loop.run_in_executor(
                self._executor, partial(self._fused_group_work, group)
            )
        except Exception as error:
            for request in group:
                if not request.future.done():
                    request.future.set_exception(error)
            return
        for request, outcome in zip(group, outcomes):
            if request.future.done():
                continue
            ok, value = outcome
            if ok:
                request.future.set_result(value)
            else:
                request.future.set_exception(value)

    def _fused_group_work(self, group: list) -> list:
        """Worker-thread body of one fused sweep.

        Snapshot each session's state under its lock, concatenate every
        snapshot into one :func:`~repro.core.kernels.execute_fused`
        sweep, then commit each segment back under its session's lock.
        A request whose session can't fuse (sharded, cached, fenced by a
        concurrent mutation) runs its ordinary per-request work instead
        — the results are indistinguishable either way.

        Returns ``(ok, value-or-error)`` per request, aligned with
        ``group``.
        """
        outcomes: list = [None] * len(group)
        segments: list = []
        finishers: list = []
        by_entry: dict[int, list] = {}
        order: list[SessionEntry] = []
        for index, request in enumerate(group):
            bucket = by_entry.setdefault(id(request.entry), [])
            if not bucket:
                order.append(request.entry)
            bucket.append((index, request))
        for entry in order:
            members = by_entry[id(entry)]
            klass = members[0][1].klass
            try:
                if klass == "count":
                    self._snapshot_count(
                        entry, members, segments, finishers, outcomes
                    )
                elif klass == "supports":
                    self._snapshot_supports(
                        entry, members, segments, finishers, outcomes
                    )
                else:
                    self._snapshot_pairs(
                        entry, members, segments, finishers, outcomes
                    )
            except Exception as error:
                for index, request in members:
                    if outcomes[index] is None:
                        outcomes[index] = (False, error)
        if segments:
            with self._stats_lock:
                self._fused_batches += 1
                self._launches += 1
            results = kernels.execute_fused(segments)
            for finisher, result in zip(finishers, results):
                finisher(result)
        return outcomes

    def _run_fallback(self, request: _FusionRequest, entry) -> tuple:
        try:
            return (True, request.work(entry))
        except Exception as error:
            return (False, error)

    def _note_fence(self) -> None:
        with self._stats_lock:
            self._fenced += 1

    def _merge_fused_events(self, entry, generation, events: dict) -> None:
        """Price a fused count sweep exactly as :meth:`_warm` would.

        The fused segment reproduces the planned count run field by
        field, so merging its events once per generation keeps the
        priced fleet identical to per-request serving.
        """
        with entry.stats_lock:
            entry.known_generation = max(entry.known_generation, generation)
            if generation not in entry.priced_generations:
                entry.events = entry.events.merge(EventCounts(**events))
                entry.priced_generations.add(generation)
                entry.warmed = True

    def _snapshot_count(self, entry, members, segments, finishers, outcomes):
        session = entry.session
        state, payload, generation = session.fusion_count_state()
        if state != "segment":
            # Cached (near-free) or unfusible (sharded/plan-free).
            for index, request in members:
                outcomes[index] = self._run_fallback(request, entry)
            return

        def finish(result):
            committed = session.fusion_commit_count(
                generation, result.accumulator
            )
            if committed is None:
                self._note_fence()
                outcome = None
            else:
                self._merge_fused_events(entry, generation, result.events)
                outcome = (True, committed)
            for index, request in members:
                outcomes[index] = (
                    outcome
                    if outcome is not None
                    else self._run_fallback(request, entry)
                )

        segments.append(payload)
        finishers.append(finish)

    def _snapshot_supports(self, entry, members, segments, finishers, outcomes):
        session = entry.session
        state, payload, generation = session.fusion_supports_state()
        if state != "segment":
            for index, request in members:
                outcomes[index] = self._run_fallback(request, entry)
            return

        def finish(result):
            committed = session.fusion_commit_supports(
                generation, result.value, result.events, result.cache_stats
            )
            if not committed:
                self._note_fence()
            # Either way the per-request work now completes cheaply (from
            # the committed cache) or correctly (post-mutation recompute).
            for index, request in members:
                outcomes[index] = self._run_fallback(request, entry)

        segments.append(payload)
        finishers.append(finish)

    def _snapshot_pairs(self, entry, members, segments, finishers, outcomes):
        """Merge every probe read against one session into one join.

        All of a window's ``common_neighbors``/``common_neighbors_many``
        probes for this session concatenate into a single batched join
        plan — one vectorised merge-join and one kernel segment for the
        lot, where per-request serving compiles one plan per request.
        """
        session = entry.session
        slices: list = []  # (index, request, lo, hi, meta)
        sources: list = []
        dests: list = []
        with session.lock:
            total = 0
            for index, request in members:
                spec = request.spec
                try:
                    if spec[0] == "pair":
                        us, vs = session.parse_pairs([(spec[1], spec[2])])
                        meta = ("pair", int(spec[1]), int(spec[2]))
                    elif spec[0] == "many":
                        us, vs = session.parse_pairs(spec[1])
                        meta = ("many",)
                    else:  # ("cand", u, k): rank u's two-hop candidates
                        state, payload, _gen = session.fusion_candidates_state(
                            int(spec[1])
                        )
                        if state == "cached":
                            outcomes[index] = self._run_fallback(
                                request, entry
                            )
                            continue
                        candidates = payload
                        us = np.full(
                            candidates.size, int(spec[1]), dtype=np.int64
                        )
                        vs = candidates.astype(np.int64, copy=False)
                        meta = ("cand", int(spec[1]), candidates)
                except Exception as error:
                    outcomes[index] = (False, error)
                    continue
                if us.size == 0:  # an empty common_neighbors_many batch
                    outcomes[index] = (True, {"pairs": 0, "scores": []})
                    continue
                slices.append((index, request, total, total + us.size, meta))
                sources.append(us)
                dests.append(vs)
                total += us.size
            if not total:
                return
            _state, segment, generation = session.fusion_pairs_state(
                np.concatenate(sources), np.concatenate(dests)
            )

        def finish(result):
            with session.lock:
                fresh = session.generation == generation
            if not fresh:
                self._note_fence()
            else:
                self._warm(entry)  # pricing parity with per-request reads
            scores = result.value if fresh else None
            for index, request, lo, hi, meta in slices:
                if scores is None:
                    outcomes[index] = self._run_fallback(request, entry)
                elif meta[0] == "pair":
                    outcomes[index] = (
                        True,
                        {
                            "u": meta[1],
                            "v": meta[2],
                            "score": int(scores[lo]),
                        },
                    )
                elif meta[0] == "many":
                    outcomes[index] = (
                        True,
                        {
                            "pairs": hi - lo,
                            "scores": [int(s) for s in scores[lo:hi]],
                        },
                    )
                else:
                    session.fusion_commit_candidates(
                        generation, meta[1], meta[2], scores[lo:hi]
                    )
                    # Rank + shape from the (now resident) cache via the
                    # ordinary work fn — identical payload either way.
                    outcomes[index] = self._run_fallback(request, entry)

        segments.append(segment)
        finishers.append(finish)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def _read_target(self, entry: SessionEntry):
        """The session a pure read should run on (primary or replica)."""
        if not self._replicas:
            return entry.session
        return self._pool.replica_for(entry, self._replicas)

    def _warm(self, entry: SessionEntry) -> None:
        """Establish (and price) residency: the Fig. 4 'load the sliced
        graph into the array' step, exactly once per pool entry."""
        if entry.warmed:
            return
        session = entry.session
        with session.lock:
            result = session.run()
            generation = session.generation
        with entry.stats_lock:
            entry.known_generation = max(entry.known_generation, generation)
            if not entry.warmed:
                entry.events = entry.events.merge(result.events)
                entry.priced_generations.add(generation)
                entry.warmed = True

    def _price_run(self, entry: SessionEntry) -> None:
        """Merge the current generation's full-run events, at most once."""
        session = entry.session
        with session.lock:
            result = session.run()
            generation = session.generation
        with entry.stats_lock:
            entry.known_generation = max(entry.known_generation, generation)
            if generation not in entry.priced_generations:
                entry.events = entry.events.merge(result.events)
                entry.priced_generations.add(generation)

    def _count_work(self, entry: SessionEntry) -> int:
        self._warm(entry)
        return self._read_target(entry).count()

    def _simulate_work(self, entry: SessionEntry) -> RunReport:
        self._warm(entry)
        report = entry.session.simulate()
        self._price_run(entry)
        return report

    def _slice_stats_work(self, entry: SessionEntry) -> SliceStatistics:
        self._warm(entry)
        return entry.session.slice_stats()

    def _baseline_work(self, entry: SessionEntry, name: str) -> int:
        self._warm(entry)
        return entry.session.baseline(name)

    def _support_work(self, entry: SessionEntry) -> dict:
        self._warm(entry)
        support = self._read_target(entry).support()
        histogram: dict[str, int] = {}
        for value in support.values():
            key = str(value)
            histogram[key] = histogram.get(key, 0) + 1
        return {
            "num_edges": len(support),
            "total_support": sum(support.values()),
            "max_support": max(support.values(), default=0),
            "histogram": histogram,
        }

    def _truss_work(self, entry: SessionEntry, k) -> dict:
        self._warm(entry)
        session = self._read_target(entry)
        trussness = session.truss()
        histogram: dict[str, int] = {}
        for value in trussness.values():
            key = str(value)
            histogram[key] = histogram.get(key, 0) + 1
        payload = {
            "num_edges": len(trussness),
            "max_trussness": max(trussness.values(), default=0),
            "histogram": histogram,
        }
        if k is not None:
            payload["k"] = int(k)
            payload["k_truss_edges"] = session.truss(int(k)).num_edges
        return payload

    def _cluster_work(self, entry: SessionEntry) -> dict:
        self._warm(entry)
        return self._read_target(entry).clustering().to_mapping()

    def _common_neighbors_work(self, entry: SessionEntry, u, v, k) -> dict:
        self._warm(entry)
        session = self._read_target(entry)
        if v is not None:
            return {
                "u": int(u),
                "v": int(v),
                "score": session.common_neighbors(int(u), int(v)),
            }
        candidates = session.common_neighbors(
            int(u), k=None if k is None else int(k)
        )
        payload = {
            "u": int(u),
            "candidates": [[int(vertex), int(score)] for vertex, score in candidates],
        }
        if k is not None:
            payload["k"] = int(k)
        return payload

    def _cn_many_work(self, entry: SessionEntry, pairs) -> dict:
        self._warm(entry)
        scores = self._read_target(entry).common_neighbors_many(pairs)
        return {"pairs": len(scores), "scores": [int(s) for s in scores]}

    def _apply_work(self, entry: SessionEntry, ops, record: bool) -> UpdateReport:
        self._warm(entry)
        session = entry.session
        try:
            report = session.apply(ops, record=record)
        except Exception as error:
            # A mid-stream failure still committed every earlier segment
            # (the failing one rolled back): fold the partial accounting
            # the session attaches into this entry so the priced events
            # and the journal keep matching the session's real state.
            partial = getattr(error, "partial_update", None)
            applied = getattr(error, "applied_operations", None)
            with entry.stats_lock:
                entry.known_generation = max(
                    entry.known_generation, session.generation
                )
                if partial is not None:
                    entry.events = entry.events.merge(partial.events)
                    entry.ops_applied += partial.inserted + partial.deleted
                if self._record_journal and applied:
                    entry.journal.append(list(applied))
            raise
        with entry.stats_lock:
            entry.known_generation = max(
                entry.known_generation, session.generation
            )
            entry.events = entry.events.merge(report.events)
            # Effective ops (edges actually changed), matching the unit
            # the partial-failure path can account in.
            entry.ops_applied += report.inserted + report.deleted
            if self._record_journal:
                entry.journal.append(list(ops))
        return report

    def _snapshot(self, entry: SessionEntry, resident: bool) -> SessionServeStats:
        with entry.stats_lock:
            return SessionServeStats(
                key=entry.key,
                queries=entry.total_queries,
                by_kind=dict(entry.queries),
                ops_applied=entry.ops_applied,
                events=entry.events,
                resident_bytes=entry.session.resident_bytes() if resident else 0,
                plan_bytes=entry.session.plan_resident_bytes() if resident else 0,
                resident_detail=(
                    entry.session.resident_bytes_detail() if resident else {}
                ),
                shards=entry.session.shard_residency() if resident else [],
            )


def open_service(
    pool: SessionPool | None = None,
    *,
    max_sessions: int = 8,
    max_resident_bytes: int | None = None,
    max_workers: int | None = None,
    model=None,
    config=None,
    record_journal: bool = False,
    fuse_window_ms: float | None = None,
    max_queue: int | None = None,
    admission: str = "reject",
    replicas: int = 0,
    **overrides,
) -> Service:
    """Open a :class:`Service` (the serving counterpart of ``open_session``).

    Returns the service directly; use ``async with`` for scoped cleanup::

        async with open_service(max_sessions=16, num_arrays=4) as service:
            print(await service.count("dataset:com-dblp@0.05"))
    """
    return Service(
        pool,
        max_sessions=max_sessions,
        max_resident_bytes=max_resident_bytes,
        max_workers=max_workers,
        model=model,
        config=config,
        record_journal=record_journal,
        fuse_window_ms=fuse_window_ms,
        max_queue=max_queue,
        admission=admission,
        replicas=replicas,
        **overrides,
    )
