"""The async serving tier: many resident sessions, one entry point.

:class:`Service` multiplexes concurrent clients over a
:class:`~repro.serve.pool.SessionPool` of resident
:class:`~repro.api.TCIMSession` objects:

* **reads** (:meth:`Service.count`, :meth:`Service.simulate`,
  :meth:`Service.slice_stats`, :meth:`Service.baseline`, and the
  workload queries :meth:`Service.support`, :meth:`Service.truss`,
  :meth:`Service.cluster`, :meth:`Service.common_neighbors`) are served
  from each session's resident caches; identical in-flight reads against
  the same session *coalesce* onto one executor job (keyed by the
  session's mutation generation — and, for argument-bearing workloads,
  per op + arguments — so a read never coalesces across an update or
  across different arguments);
* **writes** (:meth:`Service.apply`) serialise per session behind an
  ``asyncio.Lock`` — an apply stream can never interleave with another
  apply on the same graph — while applies on *different* sessions
  interleave freely;
* all CPU-bound engine work runs on a shared thread worker pool, so the
  event loop stays responsive and independent sessions' numpy kernels
  overlap.

Every piece of engine work a session performs for the service — the
residency-establishing first run, post-update re-runs (priced once per
generation), and each incremental delta re-join — accumulates into the
entry's merged :class:`EventCounts`.  :meth:`Service.report` prices that
fleet through :func:`repro.arch.pipeline.measured_fleet_report`: the
aggregate throughput, per-session critical paths, and pool occupancy of
the whole serving run.

Usage::

    from repro.serve import open_service

    async def main():
        async with open_service(max_sessions=8) as service:
            count = await service.count("dataset:com-dblp@0.05")
            await service.apply("dataset:com-dblp@0.05", [("+", 0, 1)])
            print(service.report().queries_per_second)
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from functools import partial

from repro.api import RunReport, UpdateReport
from repro.core.accelerator import EventCounts
from repro.core.slicing import SliceStatistics
from repro.errors import ReproError
from repro.serve.pool import PoolStats, SessionEntry, SessionPool

__all__ = [
    "SessionServeStats",
    "ServiceReport",
    "Service",
    "open_service",
]


@dataclass
class SessionServeStats:
    """Serving statistics of one (possibly evicted) resident session."""

    key: str
    queries: int
    by_kind: dict[str, int]
    ops_applied: int
    events: EventCounts
    resident_bytes: int
    #: Share of ``resident_bytes`` held by the compiled join plan — the
    #: memory the pool spends to make this session's repeat reads
    #: near-free (see docs/API.md, "Join plans").
    plan_bytes: int = 0
    #: Modelled critical path of this session's accumulated engine work.
    latency_s: float = 0.0

    def to_mapping(self) -> dict:
        return {
            "key": self.key,
            "queries": self.queries,
            "by_kind": dict(self.by_kind),
            "ops_applied": self.ops_applied,
            "events": asdict(self.events),
            "resident_bytes": self.resident_bytes,
            "plan_bytes": self.plan_bytes,
            "latency_s": self.latency_s,
        }


@dataclass
class ServiceReport:
    """Aggregate outcome of a serving run, priced through ``arch/perf``.

    ``fleet`` is the measured fleet :class:`~repro.arch.perf.PerfReport`
    (critical path = slowest session, per-group leakage); it is ``None``
    until any session has performed engine work.
    """

    wall_clock_s: float
    queries: int
    queries_per_second: float
    #: Reads answered by an already in-flight identical computation.
    coalesced: int
    sessions: list[SessionServeStats] = field(default_factory=list)
    fleet: object | None = None  # arch.perf.PerfReport, imported lazily
    pool: PoolStats = field(default_factory=PoolStats)
    resident: int = 0
    max_sessions: int = 0
    resident_bytes: int = 0

    @property
    def occupancy(self) -> float:
        """Resident sessions over capacity (1.0 = full pool)."""
        return self.resident / self.max_sessions if self.max_sessions else 0.0

    def to_mapping(self) -> dict:
        payload = {
            "wall_clock_s": self.wall_clock_s,
            "queries": self.queries,
            "queries_per_second": self.queries_per_second,
            "coalesced": self.coalesced,
            "sessions": [stats.to_mapping() for stats in self.sessions],
            "pool": asdict(self.pool),
            "resident": self.resident,
            "max_sessions": self.max_sessions,
            "occupancy": self.occupancy,
            "resident_bytes": self.resident_bytes,
        }
        if self.fleet is not None:
            payload["fleet"] = {
                "latency_s": self.fleet.latency_s,
                "array_energy_j": self.fleet.array_energy_j,
                "system_energy_j": self.fleet.system_energy_j,
                "latency_breakdown_s": dict(self.fleet.latency_breakdown_s),
            }
        return payload


class Service:
    """Async front door over a pool of resident sessions.

    Construct directly or via :func:`open_service`.  ``config`` and
    ``overrides`` set the default accelerator configuration for sessions
    the service opens; per-request configs key separate pool entries.
    ``record_journal=True`` keeps each session's applied op batches in
    execution order — the hook the differential serving tests replay.

    The service is an async context manager; :meth:`close` drains the
    worker pool and evicts every resident session.
    """

    def __init__(
        self,
        pool: SessionPool | None = None,
        *,
        max_sessions: int = 8,
        max_resident_bytes: int | None = None,
        max_workers: int | None = None,
        model=None,
        config=None,
        record_journal: bool = False,
        **overrides,
    ) -> None:
        if pool is not None and (
            max_sessions != 8
            or max_resident_bytes is not None
            or config is not None
            or overrides
        ):
            # Silently dropping these would leave e.g. a "memory budget"
            # the operator believes is active but the pool never saw.
            raise ReproError(
                "pass pool configuration (max_sessions/max_resident_bytes/"
                "config/overrides) either to the SessionPool or to the "
                "Service, not both"
            )
        self._pool = pool or SessionPool(
            max_sessions,
            max_resident_bytes,
            config=config,
            model=model,
            **overrides,
        )
        self._model = model
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="tcim-serve"
        )
        self._record_journal = record_journal
        #: key -> [asyncio.Lock, active-user count]; pruned when idle.
        self._acquire_locks: dict[str, list] = {}
        self._started = time.perf_counter()
        self._queries = 0
        self._coalesced = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "Service":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        """Drain in-flight work, shut the worker pool, evict all sessions."""
        if self._closed:
            return
        self._closed = True
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, partial(self._executor.shutdown, wait=True))
        self._pool.close()

    @property
    def pool(self) -> SessionPool:
        """The underlying session pool."""
        return self._pool

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    async def count(self, source, config=None, **overrides) -> int:
        """Exact triangle count (incrementally maintained across applies)."""
        return await self._read(source, config, overrides, "count", self._count_work)

    async def simulate(self, source, config=None, **overrides) -> RunReport:
        """Full priced run on the resident structures (cached per generation)."""
        return await self._read(
            source, config, overrides, "simulate", self._simulate_work
        )

    async def slice_stats(self, source, config=None, **overrides) -> SliceStatistics:
        """Table III/IV compression statistics of the resident structures."""
        return await self._read(
            source, config, overrides, "slice_stats", self._slice_stats_work
        )

    async def baseline(self, source, name: str, config=None, **overrides) -> int:
        """Triangle count via a registered software baseline."""
        return await self._read(
            source,
            config,
            overrides,
            f"baseline:{name}",
            partial(self._baseline_work, name=name),
        )

    async def support(self, source, config=None, **overrides) -> dict:
        """Per-edge triangle supports via the session's workload kernel.

        Returns a JSON-able mapping with the support histogram and
        totals (the full per-edge map lives in the session; clients
        wanting individual edges use ``common_neighbors``).
        """
        return await self._read(
            source, config, overrides, "support", self._support_work
        )

    async def truss(self, source, k=None, config=None, **overrides) -> dict:
        """Truss decomposition summary (optionally the k-truss edge count).

        Coalescing is keyed per ``k``: two in-flight ``truss(k=3)``
        queries share one computation, while ``truss()`` and
        ``truss(k=3)`` run independently.
        """
        kind = "truss" if k is None else f"truss:{int(k)}"
        return await self._read(
            source, config, overrides, kind, partial(self._truss_work, k=k)
        )

    async def cluster(self, source, config=None, **overrides) -> dict:
        """Clustering metrics from the session's per-vertex tally workload."""
        return await self._read(
            source, config, overrides, "cluster", self._cluster_work
        )

    async def common_neighbors(
        self, source, u: int, v=None, k=None, config=None, **overrides
    ) -> dict:
        """Common-neighbor scores from vertex ``u`` (pair score or top-k).

        Coalescing is keyed per ``(u, v, k)`` triple, so repeated
        identical link-prediction probes against an unchanged session
        share one kernel run.
        """
        kind = f"common_neighbors:{int(u)}:{v}:{k}"
        return await self._read(
            source,
            config,
            overrides,
            kind,
            partial(self._common_neighbors_work, u=u, v=v, k=k),
        )

    async def apply(
        self, source, ops, config=None, *, record: bool = False, **overrides
    ) -> UpdateReport:
        """Apply one ordered update stream to the resident session.

        Applies to the same session run strictly one at a time, in
        arrival order at the session's write lock; applies to different
        sessions interleave across the worker pool.
        """
        ops = list(ops)
        entry = await self._checkout(source, config, overrides)
        try:
            entry.count_query("apply")
            if entry.write_lock is None:
                entry.write_lock = asyncio.Lock()
            loop = asyncio.get_running_loop()
            async with entry.write_lock:
                report = await loop.run_in_executor(
                    self._executor, partial(self._apply_work, entry, ops, record)
                )
            self._queries += 1
            return report
        finally:
            self._release(entry)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> ServiceReport:
        """Aggregate serving report, priced through the performance model."""
        wall = time.perf_counter() - self._started
        resident_stats = [
            self._snapshot(entry, resident=True) for entry in self._pool.entries()
        ]
        retired_stats = [
            self._snapshot(entry, resident=False) for entry in self._pool.retired()
        ]
        stats = resident_stats + retired_stats
        active = [s for s in stats if any(asdict(s.events).values())]
        fleet = None
        if active:
            from repro.arch.perf import default_pim_model
            from repro.arch.pipeline import measured_fleet_report

            model = self._model or default_pim_model()
            for session_stats in active:
                session_stats.latency_s = model.evaluate(
                    session_stats.events
                ).latency_s
            # The fleet figure models the *currently resident* groups
            # operating concurrently; evicted sessions' array groups no
            # longer exist, so pricing them as co-resident would inflate
            # leakage and the critical path.  They keep their individual
            # latency_s in the sessions list.
            co_resident = [
                s for s in resident_stats if any(asdict(s.events).values())
            ]
            if co_resident:
                fleet = measured_fleet_report(
                    [s.events for s in co_resident], base_model=model
                )
        return ServiceReport(
            wall_clock_s=wall,
            queries=self._queries,
            queries_per_second=self._queries / wall if wall > 0 else 0.0,
            coalesced=self._coalesced,
            sessions=stats,
            fleet=fleet,
            # Copy: the report is a snapshot, not a live view that later
            # pool activity (e.g. close()'s evictions) keeps mutating.
            pool=PoolStats(**asdict(self._pool.stats)),
            resident=self._pool.resident,
            max_sessions=self._pool.max_sessions,
            resident_bytes=self._pool.resident_bytes(),
        )

    def journal(self, source, config=None, **overrides) -> list:
        """The recorded op batches of one session key, in execution order.

        Requires ``record_journal=True``.  A key that was evicted and
        re-acquired has history on both the retired entries and the
        resident one; the returned stream concatenates them in eviction
        order, so replaying it from the base graph reproduces the
        session's current state.  (Retired entries are retained up to a
        bound — journal replay is a testing facility, not durable
        storage.)  Raises if the key has never been served.
        """
        if not self._record_journal:
            raise ReproError("journal recording is off; open the Service "
                             "with record_journal=True")
        key = self._pool.key_for(source, config, overrides)
        batches: list = []
        seen = False
        for entry in self._pool.retired() + self._pool.entries():
            if entry.key == key:
                seen = True
                batches.extend(entry.journal)
        if not seen:
            raise ReproError(f"no session for key {key!r}")
        return batches

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    async def _checkout(self, source, config, overrides) -> SessionEntry:
        if self._closed:
            raise ReproError("service is closed")
        key = self._pool.key_for(source, config, overrides)
        # Serialise acquires per key so a pool miss is built exactly once
        # even when many clients hit a cold key simultaneously.  Slots
        # are refcounted and dropped when idle, so a long-running server
        # doesn't accumulate one lock per key it has ever seen.
        slot = self._acquire_locks.get(key)
        if slot is None:
            slot = self._acquire_locks[key] = [asyncio.Lock(), 0]
        slot[1] += 1
        loop = asyncio.get_running_loop()
        try:
            async with slot[0]:
                return await loop.run_in_executor(
                    self._executor,
                    partial(self._pool.acquire, source, config, **overrides),
                )
        finally:
            slot[1] -= 1
            if slot[1] == 0 and self._acquire_locks.get(key) is slot:
                del self._acquire_locks[key]

    def _release(self, entry: SessionEntry) -> None:
        """Return the lease off the event loop.

        Release can evict (closing a session, snapshotting its graph) and
        the byte-budget check sums ``resident_bytes`` under session
        locks, so it runs on the worker pool; inline only as a fallback
        while the executor is shutting down.
        """
        try:
            self._executor.submit(self._pool.release, entry)
        except RuntimeError:
            self._pool.release(entry)

    async def _read(self, source, config, overrides, kind: str, work) -> object:
        entry = await self._checkout(source, config, overrides)
        try:
            entry.count_query(kind)
            loop = asyncio.get_running_loop()
            # The service-maintained generation mirror: reading the real
            # session.generation here would block the event loop behind
            # an in-flight apply's session lock.
            generation = entry.known_generation
            slot = entry.inflight.get(kind)
            if slot is not None and slot[0] == generation and not slot[1].done():
                # Identical read already computing against the same
                # resident state: join it instead of queueing a duplicate.
                self._coalesced += 1
                future = slot[1]
            else:
                future = loop.run_in_executor(self._executor, partial(work, entry))
                entry.inflight[kind] = (generation, future)
            result = await future
            self._queries += 1
            return result
        finally:
            self._release(entry)

    def _warm(self, entry: SessionEntry) -> None:
        """Establish (and price) residency: the Fig. 4 'load the sliced
        graph into the array' step, exactly once per pool entry."""
        if entry.warmed:
            return
        session = entry.session
        with session.lock:
            result = session.run()
            generation = session.generation
        with entry.stats_lock:
            entry.known_generation = max(entry.known_generation, generation)
            if not entry.warmed:
                entry.events = entry.events.merge(result.events)
                entry.priced_generations.add(generation)
                entry.warmed = True

    def _price_run(self, entry: SessionEntry) -> None:
        """Merge the current generation's full-run events, at most once."""
        session = entry.session
        with session.lock:
            result = session.run()
            generation = session.generation
        with entry.stats_lock:
            entry.known_generation = max(entry.known_generation, generation)
            if generation not in entry.priced_generations:
                entry.events = entry.events.merge(result.events)
                entry.priced_generations.add(generation)

    def _count_work(self, entry: SessionEntry) -> int:
        self._warm(entry)
        return entry.session.count()

    def _simulate_work(self, entry: SessionEntry) -> RunReport:
        self._warm(entry)
        report = entry.session.simulate()
        self._price_run(entry)
        return report

    def _slice_stats_work(self, entry: SessionEntry) -> SliceStatistics:
        self._warm(entry)
        return entry.session.slice_stats()

    def _baseline_work(self, entry: SessionEntry, name: str) -> int:
        self._warm(entry)
        return entry.session.baseline(name)

    def _support_work(self, entry: SessionEntry) -> dict:
        self._warm(entry)
        support = entry.session.support()
        histogram: dict[str, int] = {}
        for value in support.values():
            key = str(value)
            histogram[key] = histogram.get(key, 0) + 1
        return {
            "num_edges": len(support),
            "total_support": sum(support.values()),
            "max_support": max(support.values(), default=0),
            "histogram": histogram,
        }

    def _truss_work(self, entry: SessionEntry, k) -> dict:
        self._warm(entry)
        session = entry.session
        trussness = session.truss()
        histogram: dict[str, int] = {}
        for value in trussness.values():
            key = str(value)
            histogram[key] = histogram.get(key, 0) + 1
        payload = {
            "num_edges": len(trussness),
            "max_trussness": max(trussness.values(), default=0),
            "histogram": histogram,
        }
        if k is not None:
            payload["k"] = int(k)
            payload["k_truss_edges"] = session.truss(int(k)).num_edges
        return payload

    def _cluster_work(self, entry: SessionEntry) -> dict:
        self._warm(entry)
        return entry.session.clustering().to_mapping()

    def _common_neighbors_work(self, entry: SessionEntry, u, v, k) -> dict:
        self._warm(entry)
        session = entry.session
        if v is not None:
            return {
                "u": int(u),
                "v": int(v),
                "score": session.common_neighbors(int(u), int(v)),
            }
        candidates = session.common_neighbors(
            int(u), k=None if k is None else int(k)
        )
        payload = {
            "u": int(u),
            "candidates": [[int(vertex), int(score)] for vertex, score in candidates],
        }
        if k is not None:
            payload["k"] = int(k)
        return payload

    def _apply_work(self, entry: SessionEntry, ops, record: bool) -> UpdateReport:
        self._warm(entry)
        session = entry.session
        try:
            report = session.apply(ops, record=record)
        except Exception as error:
            # A mid-stream failure still committed every earlier segment
            # (the failing one rolled back): fold the partial accounting
            # the session attaches into this entry so the priced events
            # and the journal keep matching the session's real state.
            partial = getattr(error, "partial_update", None)
            applied = getattr(error, "applied_operations", None)
            with entry.stats_lock:
                entry.known_generation = max(
                    entry.known_generation, session.generation
                )
                if partial is not None:
                    entry.events = entry.events.merge(partial.events)
                    entry.ops_applied += partial.inserted + partial.deleted
                if self._record_journal and applied:
                    entry.journal.append(list(applied))
            raise
        with entry.stats_lock:
            entry.known_generation = max(
                entry.known_generation, session.generation
            )
            entry.events = entry.events.merge(report.events)
            # Effective ops (edges actually changed), matching the unit
            # the partial-failure path can account in.
            entry.ops_applied += report.inserted + report.deleted
            if self._record_journal:
                entry.journal.append(list(ops))
        return report

    def _snapshot(self, entry: SessionEntry, resident: bool) -> SessionServeStats:
        with entry.stats_lock:
            return SessionServeStats(
                key=entry.key,
                queries=entry.total_queries,
                by_kind=dict(entry.queries),
                ops_applied=entry.ops_applied,
                events=entry.events,
                resident_bytes=entry.session.resident_bytes() if resident else 0,
                plan_bytes=entry.session.plan_resident_bytes() if resident else 0,
            )


def open_service(
    pool: SessionPool | None = None,
    *,
    max_sessions: int = 8,
    max_resident_bytes: int | None = None,
    max_workers: int | None = None,
    model=None,
    config=None,
    record_journal: bool = False,
    **overrides,
) -> Service:
    """Open a :class:`Service` (the serving counterpart of ``open_session``).

    Returns the service directly; use ``async with`` for scoped cleanup::

        async with open_service(max_sessions=16, num_arrays=4) as service:
            print(await service.count("dataset:com-dblp@0.05"))
    """
    return Service(
        pool,
        max_sessions=max_sessions,
        max_resident_bytes=max_resident_bytes,
        max_workers=max_workers,
        model=model,
        config=config,
        record_journal=record_journal,
        **overrides,
    )
