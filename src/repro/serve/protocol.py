"""Line protocol and drivers for the serving tier.

One JSON object per line, over stdin/stdout or TCP.  Requests::

    {"id": 1, "op": "count",    "graph": "dataset:com-dblp@0.05"}
    {"id": 2, "op": "simulate", "graph": "g.txt", "config": {"num_arrays": 4}}
    {"id": 3, "op": "apply",    "graph": "g.txt", "ops": [["+", 0, 1], ["-", 2, 3]]}
    {"id": 4, "op": "baseline", "graph": "g.txt", "name": "forward"}
    {"id": 5, "op": "slice-stats", "graph": "g.txt"}
    {"id": 6, "op": "support",  "graph": "g.txt"}
    {"id": 7, "op": "truss",    "graph": "g.txt", "k": 3}
    {"id": 8, "op": "cluster",  "graph": "g.txt"}
    {"id": 9, "op": "common_neighbors", "graph": "g.txt", "u": 0, "k": 10}
    {"id": 10, "op": "common_neighbors_many", "graph": "g.txt", "pairs": [[0, 5], [1, 9]]}
    {"id": 11, "op": "report"}
    {"id": 12, "op": "stats"}
    {"id": 13, "op": "ping"}

Responses echo the request ``id`` (clients may pipeline; responses come
back in *completion* order, so correlate by id)::

    {"id": 1, "ok": true,  "op": "count", "result": {"triangles": 120283}}
    {"id": 3, "ok": false, "op": "apply", "error": "GraphError: ..."}

``graph`` takes anything :func:`repro.api.resolve_graph` accepts — file
paths and registered source schemes; ``config`` is an
:class:`~repro.core.accelerator.AcceleratorConfig` mapping layered over
the service's defaults.  Each request line is dispatched as its own
task, so one slow query never blocks the connection — this is where the
service's cross-session interleaving surfaces on the wire.

The ``stats`` op returns the live scheduler counters plus the pool's
out-of-core paging traffic when the service spills to disk
(``serve --spill-dir``): ``snapshots_written`` (eviction snapshots
persisted), ``hydrations`` (acquires served warm from a snapshot) and
``spilled_bytes`` (payload bytes currently paged out).  The richer
``report`` op additionally carries each resident session's
``resident_detail`` byte breakdown (slices / plan / sym_plan / edges /
graph / spilled) from ``TCIMSession.resident_bytes_detail()``.
"""

from __future__ import annotations

import asyncio
import json
import sys
from dataclasses import asdict

from repro.serve.service import Service

__all__ = ["handle_request", "serve_stream", "serve_stdio", "serve_tcp"]


async def handle_request(service: Service, request) -> dict:
    """Dispatch one decoded request object; never raises."""
    if not isinstance(request, dict):
        return {
            "id": None,
            "ok": False,
            "error": f"request must be a JSON object, got {type(request).__name__}",
        }
    rid = request.get("id")
    op = request.get("op")
    try:
        result = await _dispatch(service, op, request)
        return {"id": rid, "ok": True, "op": op, "result": result}
    except Exception as error:  # protocol boundary: report, don't crash
        return {
            "id": rid,
            "ok": False,
            "op": op,
            "error": f"{type(error).__name__}: {error}",
        }


async def _dispatch(service: Service, op, request: dict):
    if op == "ping":
        return {"pong": True}
    if op == "report":
        # report() takes session locks while sizing residents — keep it
        # off the event loop so it cannot stall behind an apply.
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(None, service.report)
        return report.to_mapping()
    if op == "stats":
        # Live scheduler counters (queue depth, fused batches, shed);
        # lock-free, so it answers even while the service is saturated.
        return service.stats()
    if op not in _GRAPH_OPS:
        known = sorted(("ping", "report", "stats", *_GRAPH_OPS))
        raise ValueError(f"unknown op {op!r}; expected one of {known}")
    graph = request.get("graph")
    if not isinstance(graph, str):
        raise ValueError(f"op {op!r} needs a 'graph' spec string")
    config = request.get("config")
    return await _GRAPH_OPS[op](service, graph, config, request)


async def _op_count(service, graph, config, _request):
    return {"triangles": await service.count(graph, config)}


async def _op_simulate(service, graph, config, _request):
    report = await service.simulate(graph, config)
    return report.to_mapping()


async def _op_slice_stats(service, graph, config, _request):
    stats = await service.slice_stats(graph, config)
    payload = asdict(stats)
    # The derived Table III/IV quantities are properties, which asdict
    # skips; clients want them without re-deriving the formulas.
    payload.update(
        num_valid_slices=stats.num_valid_slices,
        valid_percent=stats.valid_percent,
        paper_valid_percent=stats.paper_valid_percent,
        computation_reduction_percent=stats.computation_reduction_percent,
    )
    return payload


async def _op_baseline(service, graph, config, request):
    name = request.get("name")
    if not isinstance(name, str):
        raise ValueError("op 'baseline' needs a 'name' string")
    return {
        "method": name,
        "triangles": await service.baseline(graph, name, config),
    }


async def _op_apply(service, graph, config, request):
    ops = request.get("ops")
    if not isinstance(ops, list):
        raise ValueError("op 'apply' needs an 'ops' list of [op, u, v] triples")
    report = await service.apply(
        graph, [tuple(op) for op in ops], config,
        record=bool(request.get("record", False)),
    )
    return report.to_mapping()


def _optional_int(request: dict, op: str, name: str):
    value = request.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"op {op!r}: {name!r} must be an integer")
    return value


async def _op_support(service, graph, config, _request):
    return await service.support(graph, config)


async def _op_truss(service, graph, config, request):
    return await service.truss(graph, _optional_int(request, "truss", "k"), config)


async def _op_cluster(service, graph, config, _request):
    return await service.cluster(graph, config)


async def _op_common_neighbors(service, graph, config, request):
    u = _optional_int(request, "common_neighbors", "u")
    if u is None:
        raise ValueError("op 'common_neighbors' needs a 'u' vertex integer")
    v = _optional_int(request, "common_neighbors", "v")
    k = _optional_int(request, "common_neighbors", "k")
    if v is None and k is None:
        # A bare probe defaults to the top-10 candidates rather than the
        # full (possibly huge) two-hop list.
        k = 10
    return await service.common_neighbors(graph, u, v, k, config)


async def _op_common_neighbors_many(service, graph, config, request):
    pairs = request.get("pairs")
    if not isinstance(pairs, list):
        raise ValueError(
            "op 'common_neighbors_many' needs a 'pairs' list of [u, v] pairs"
        )
    return await service.common_neighbors_many(graph, pairs, config)


_GRAPH_OPS = {
    "count": _op_count,
    "simulate": _op_simulate,
    "slice-stats": _op_slice_stats,
    "baseline": _op_baseline,
    "apply": _op_apply,
    "support": _op_support,
    "truss": _op_truss,
    "cluster": _op_cluster,
    "common_neighbors": _op_common_neighbors,
    "common_neighbors_many": _op_common_neighbors_many,
}


async def serve_stream(service: Service, read_line, write_line) -> int:
    """Core request loop shared by the stdio and TCP drivers.

    ``read_line`` is an awaitable returning the next text line or
    ``None`` at end of stream; ``write_line`` is an awaitable consuming
    one response line.  Every request dispatches as its own task;
    responses are written as they complete.  Ordering: requests naming
    the **same** ``graph`` on this stream execute in submission order
    (so a pipelined count → apply → count reads as written), requests on
    different graphs interleave freely, and a ``report`` request first
    waits for every request already submitted, so a piped script ending
    in ``{"op": "report"}`` summarises the whole run.  A failing
    ``write_line`` (client hung up) stops the stream cleanly.  Returns
    the number of requests handled.
    """
    write_lock = asyncio.Lock()
    pending: set[asyncio.Task] = set()
    #: graph spec -> last task submitted for it (the FIFO chain tail).
    chains: dict[str, asyncio.Task] = {}
    hung_up = False
    handled = 0

    async def respond(payload: dict) -> None:
        nonlocal hung_up
        if hung_up:
            return
        async with write_lock:
            try:
                await write_line(json.dumps(payload, sort_keys=True))
            except (ConnectionError, OSError):
                hung_up = True

    async def dispatch(request, barrier=()) -> None:
        if barrier:
            await asyncio.gather(*barrier, return_exceptions=True)
        await respond(await handle_request(service, request))

    while not hung_up:
        line = await read_line()
        if line is None:
            break
        text = line.strip()
        if not text:
            continue
        handled += 1
        try:
            request = json.loads(text)
        except json.JSONDecodeError as error:
            await respond({"id": None, "ok": False, "error": f"invalid JSON: {error}"})
            continue
        barrier: tuple = ()
        graph = None
        if isinstance(request, dict):
            if request.get("op") == "report":
                barrier = tuple(pending)
            else:
                graph = request.get("graph")
                if isinstance(graph, str) and graph in chains:
                    barrier = (chains[graph],)
        task = asyncio.create_task(dispatch(request, barrier))
        pending.add(task)
        task.add_done_callback(pending.discard)
        if isinstance(graph, str):
            chains[graph] = task

            def prune(done, key=graph):
                if chains.get(key) is done:
                    del chains[key]

            task.add_done_callback(prune)
    if pending:
        await asyncio.gather(*pending)
    return handled


async def serve_stdio(service: Service, stdin=None, stdout=None) -> int:
    """Serve JSON lines from ``stdin`` until EOF; returns requests handled.

    Input is pumped by a dedicated daemon thread rather than the default
    executor: a thread parked in ``stdin.readline`` must not be joined at
    loop shutdown, or Ctrl-C would hang until the user types one more
    line.
    """
    import threading

    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    loop = asyncio.get_running_loop()
    lines: asyncio.Queue = asyncio.Queue()

    def pump() -> None:
        while True:
            try:
                line = stdin.readline()
            except (ValueError, OSError):  # stdin closed under us
                line = ""
            try:
                loop.call_soon_threadsafe(lines.put_nowait, line if line else None)
            except RuntimeError:  # loop already closed (shutdown path)
                return
            if not line:
                return

    threading.Thread(target=pump, name="tcim-serve-stdin", daemon=True).start()

    async def read_line():
        return await lines.get()

    async def write_line(text: str):
        stdout.write(text + "\n")
        stdout.flush()

    return await serve_stream(service, read_line, write_line)


async def serve_tcp(service: Service, host: str = "127.0.0.1", port: int = 0):
    """Start a TCP JSON-lines server; returns the ``asyncio`` server.

    The caller owns the server's lifetime::

        server = await serve_tcp(service, port=7077)
        async with server:
            await server.serve_forever()
    """

    async def client(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        async def read_line():
            data = await reader.readline()
            return data.decode("utf-8") if data else None

        async def write_line(text: str):
            writer.write((text + "\n").encode("utf-8"))
            await writer.drain()

        try:
            await serve_stream(service, read_line, write_line)
        except asyncio.CancelledError:
            # Server shutdown aborted this connection mid-read.  Finish
            # the handler instead of propagating: the task is ending
            # either way, and Python 3.11's streams machinery logs a
            # spurious traceback for handlers left in the cancelled state.
            pass
        finally:
            # close() schedules the transport teardown; awaiting
            # wait_closed() here would raise the same teardown noise.
            writer.close()

    return await asyncio.start_server(client, host, port)
