"""Async multi-session serving tier (the "heavy traffic" layer).

One :class:`~repro.api.TCIMSession` reproduces the paper's Fig. 4
controller for a single resident graph.  This package serves *fleets* of
them: a :class:`SessionPool` keeps many compressed graphs resident under
an LRU memory budget, and a :class:`Service` multiplexes concurrent
clients across them — coalescing repeat reads per session, serialising
update streams per session while interleaving across sessions, and
pricing the aggregate through the architecture model
(:class:`ServiceReport`).

Entry points::

    from repro.serve import open_service          # async facade
    tcim serve [--port N] ...                     # JSON line protocol

See ``docs/API.md`` ("Serving") for pool semantics, eviction, and the
concurrency guarantees of ``TCIMSession`` vs ``Service``.
"""

from repro.errors import OverloadedError
from repro.serve.pool import PoolStats, SessionEntry, SessionPool
from repro.serve.protocol import handle_request, serve_stdio, serve_stream, serve_tcp
from repro.serve.service import (
    Service,
    ServiceReport,
    SessionServeStats,
    open_service,
)

__all__ = [
    "OverloadedError",
    "PoolStats",
    "SessionEntry",
    "SessionPool",
    "SessionServeStats",
    "Service",
    "ServiceReport",
    "open_service",
    "handle_request",
    "serve_stream",
    "serve_stdio",
    "serve_tcp",
]
