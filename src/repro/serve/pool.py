"""Resident-session pool: the serving tier's memory manager.

The paper's controller (Fig. 4) keeps *one* sliced graph resident in the
MRAM array.  A serving deployment holds many: each
:class:`~repro.api.TCIMSession` pins its compressed structures (oriented
edges, slice matrices, shard plan) in memory, and the array budget only
fits so many of them.  :class:`SessionPool` manages that budget the way
the controller's row-buffer manages slices — least-recently-used
residents are evicted when the pool exceeds its session-count or byte
budget, and re-opening an evicted graph rebuilds its residency from
scratch (which is exactly the cost the pool exists to amortise; the
serving benchmark's serial baseline measures it).

Entries are keyed by ``(graph source, effective AcceleratorConfig)``:
two requests naming the same spec and config share one resident session,
while the same graph under a different engine or shard layout gets its
own.  Entries are reference-counted; an entry leased by an in-flight
request is never evicted, so the pool may transiently exceed its budget
under load and trims back as leases are returned.

Evicting a *mutated* session (one that applied updates) writes its
current graph back into the pool: the next acquire of that key resumes
from the updated state rather than the original source, so eviction
never silently discards applied edges.  Write-back snapshots are plain
edge arrays — far smaller than the residency they replace — and remain
the key's state of record until a newer eviction overwrites them or the
pool is closed; :meth:`SessionPool.writeback_bytes` reports their
footprint, which sits outside the eviction budget (snapshots are what
makes eviction safe, so they cannot themselves be evicted).

When a session's config names a ``storage_dir``, eviction additionally
pages the *whole residency* out: a :mod:`repro.storage.snapshot` of the
slice structures, oriented edges and compiled plans is persisted under
``<storage_dir>/pool/<key-hash>``, and the next acquire of that key
hydrates it warm — no re-slice, no plan recompile (the in-memory graph
write-back stays as the fallback if the snapshot cannot be read back).
:class:`PoolStats` counts the paging traffic: ``snapshots_written``,
``hydrations``, and ``spilled_bytes`` (payload bytes currently paged
out to pool snapshots).

The pool is thread-safe for its bookkeeping, but session *creation* for
one key is not deduplicated here — :class:`repro.serve.Service`
serialises acquires per key on the event loop, which is the supported
concurrent front door.
"""

from __future__ import annotations

import hashlib
import shutil
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.api import TCIMSession, open_session
from repro.core.accelerator import AcceleratorConfig, EventCounts
from repro.errors import ReproError, StorageError
from repro.graph.graph import Graph
from repro.storage.snapshot import snapshot_nbytes

__all__ = ["PoolStats", "SessionEntry", "SessionPool"]

#: Retired (evicted) entries kept for the service report, oldest dropped.
MAX_RETIRED = 64


@dataclass
class PoolStats:
    """Pool traffic counters (monotone over the pool's lifetime,
    except ``spilled_bytes`` which is a gauge)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    peak_resident: int = 0
    #: Read replicas built for hot entries / discarded by write fences.
    replicas_built: int = 0
    replicas_retired: int = 0
    #: Eviction snapshots persisted to the spill directory.
    snapshots_written: int = 0
    #: Acquires served warm from an eviction snapshot (no re-slice,
    #: no plan recompile).
    hydrations: int = 0
    #: Payload bytes currently paged out to pool eviction snapshots.
    spilled_bytes: int = 0
    #: Gauge: bytes the pooled sessions currently hold in named
    #: shared-memory segments (the zero-copy ``backing="shm"`` plane).
    shared_bytes: int = 0


@dataclass
class SessionEntry:
    """One resident session plus its serving-side accounting.

    The pool maintains ``refs`` (leases) and LRU position; the serving
    tier fills in the per-session statistics — query counters, merged
    engine :class:`EventCounts` (what :func:`~repro.arch.pipeline.measured_fleet_report`
    prices), the op journal, and its coalescing state.
    """

    key: str
    session: TCIMSession
    #: The original source object, pinned so a Graph-keyed entry's id()
    #: stays unique for the entry's lifetime.
    source: object
    refs: int = 0
    # --- serving accounting (maintained by repro.serve.Service) -------
    queries: dict[str, int] = field(default_factory=dict)
    #: Edges actually inserted + deleted (effective ops, not requested).
    ops_applied: int = 0
    events: EventCounts = field(default_factory=EventCounts)
    #: Generations whose full-run events have been merged already.
    priced_generations: set[int] = field(default_factory=set)
    #: Service-side mirror of ``session.generation``, updated by worker
    #: threads after each operation so the event loop can key its read
    #: coalescing without touching the session's (blocking) lock.
    known_generation: int = 0
    #: Whether the residency-establishing first run has been priced.
    warmed: bool = False
    #: Applied op batches in execution order (``Service(record_journal=True)``).
    journal: list = field(default_factory=list)
    #: Serialises writers per session (created lazily by the service).
    write_lock: object | None = None
    #: kind -> (generation, in-flight future) for read coalescing.
    inflight: dict = field(default_factory=dict)
    #: Last known ``session.resident_bytes()``, refreshed on release (and
    #: by the service's workers) so the pool's budget check can sum plain
    #: ints under its lock instead of taking every session's lock.
    cached_bytes: int = 0
    #: Read replicas of a hot entry: ``(session, generation-at-build)``.
    #: Reads fan across ``[primary, *replicas]`` round-robin; a committed
    #: write bumps the primary's generation, which fences every replica
    #: built before it (they are pruned, never served stale).
    replicas: list = field(default_factory=list)
    #: Round-robin cursor over the read fan-out (monotone).
    replica_cursor: int = 0
    #: Guards the accounting fields against concurrent worker threads.
    stats_lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def total_queries(self) -> int:
        return sum(self.queries.values())

    def count_query(self, kind: str) -> None:
        with self.stats_lock:
            self.queries[kind] = self.queries.get(kind, 0) + 1


class SessionPool:
    """LRU pool of resident :class:`TCIMSession` objects.

    ``max_sessions`` bounds how many graphs stay resident;
    ``max_resident_bytes`` additionally bounds their combined
    :meth:`TCIMSession.resident_bytes` estimate (``None`` = unbounded).
    ``config``/``overrides`` set the default accelerator configuration
    for sessions the pool opens; per-acquire configs override it and key
    separate entries.
    """

    def __init__(
        self,
        max_sessions: int = 8,
        max_resident_bytes: int | None = None,
        *,
        config: AcceleratorConfig | None = None,
        model=None,
        **overrides,
    ) -> None:
        if max_sessions < 1:
            raise ReproError(f"max_sessions must be >= 1, got {max_sessions}")
        if max_resident_bytes is not None and max_resident_bytes <= 0:
            raise ReproError(
                f"max_resident_bytes must be positive, got {max_resident_bytes}"
            )
        self.max_sessions = max_sessions
        self.max_resident_bytes = max_resident_bytes
        self._default_config = config
        self._default_overrides = overrides
        self._model = model
        self._entries: OrderedDict[str, SessionEntry] = OrderedDict()
        self._retired: list[SessionEntry] = []
        #: key -> (pinned source, Graph snapshot) of a mutated session
        #: evicted before its updates could be re-derived from the source
        #: (write-back).  Pinning the source object keeps a Graph-keyed
        #: entry's ``id()`` taken for as long as its snapshot is live, so
        #: a recycled address can never resolve to a stale snapshot.
        self._writeback: dict[str, tuple[object, Graph]] = {}
        #: key -> (pinned source, snapshot directory, payload bytes) of a
        #: session paged out to disk on eviction (configs that name a
        #: ``storage_dir``).  Re-admission hydrates from here — warm
        #: slices and plans — before falling back to ``_writeback`` or
        #: the original source.
        self._snapshots: dict[str, tuple[object, Path, int]] = {}
        #: (config, sorted overrides) -> rendered config token.  Key
        #: derivation sits on every request's hot path, and the default
        #: case re-renders the same token every time.
        self._config_tokens: dict = {}
        self._lock = threading.Lock()
        self._closing = False
        self.stats = PoolStats()

    # ------------------------------------------------------------------
    # Keys and configuration
    # ------------------------------------------------------------------
    def effective_config(self, config=None, overrides=None) -> AcceleratorConfig:
        """Resolve the :class:`AcceleratorConfig` one acquire would use."""
        merged = dict(self._default_overrides)
        merged.update(overrides or {})
        if config is None:
            config = self._default_config
        if isinstance(config, AcceleratorConfig):
            if merged:
                return AcceleratorConfig.from_mapping(config.to_mapping(), **merged)
            return config
        return AcceleratorConfig.from_mapping(config, **merged)

    def key_for(self, source, config=None, overrides=None) -> str:
        """Stable entry key: the graph source plus the effective config."""
        if isinstance(source, Graph):
            token = f"graph@{id(source):#x}"
        elif isinstance(source, str):
            token = source
        else:
            raise ReproError(
                f"graph source must be a Graph or a spec string, "
                f"got {type(source).__name__}"
            )
        return f"{token}|{self._config_token(config, overrides)}"

    def _config_token(self, config, overrides) -> str:
        """Rendered effective-config string, memoised per (config, overrides).

        ``AcceleratorConfig`` is a frozen dataclass, so the common inputs
        (``None`` or a shared config object, few or no overrides) are
        hashable and the render happens once; unhashable inputs (mapping
        configs, exotic override values) just skip the cache.
        """
        try:
            cache_key = (config, tuple(sorted(overrides.items())) if overrides else ())
            cached = self._config_tokens.get(cache_key)
        except TypeError:
            cache_key = None
            cached = None
        if cached is not None:
            return cached
        mapping = self.effective_config(config, overrides).to_mapping()
        rendered = ",".join(f"{k}={mapping[k]}" for k in sorted(mapping))
        if cache_key is not None and len(self._config_tokens) < 1024:
            self._config_tokens[cache_key] = rendered
        return rendered

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------
    def acquire(self, source, config=None, **overrides) -> SessionEntry:
        """Lease the resident session for ``(source, config)``.

        A hit refreshes the entry's LRU position; a miss opens a new
        session (building residency lazily on first query) and may evict
        idle least-recently-used entries over budget.  Pair every
        acquire with :meth:`release`.
        """
        key = self.key_for(source, config, overrides)
        entry = self.acquire_hit(key)
        if entry is not None:
            return entry
        # Session creation happens outside the pool lock: it can be
        # expensive (spec resolution, graph synthesis) and must not
        # stall hits on other keys.  The Service serialises acquires
        # per key, so concurrent duplicate creation cannot happen
        # through the supported front door.  State-of-record precedence
        # for a previously evicted key: an on-disk eviction snapshot
        # hydrates warm (slices + plans, no rebuild); failing that, the
        # in-memory graph write-back (the final graph of a mutated
        # session) resumes from the updated state; failing both, the
        # source is re-resolved cold.  Snapshots stay in place — each is
        # its key's state of record until a newer eviction overwrites
        # it, covering sessions evicted again without further updates.
        effective = self.effective_config(config, overrides)
        with self._lock:
            paged = self._snapshots.get(key)
            written_back = self._writeback.get(key)
        session = None
        if paged is not None:
            try:
                session = open_session(
                    config=effective, model=self._model, snapshot=paged[1]
                )
            except StorageError:
                session = None  # unreadable page: fall back below
        hydrated = session is not None
        if session is None:
            graph = written_back[1] if written_back is not None else None
            session = open_session(
                graph if graph is not None else source,
                effective,
                model=self._model,
            )
        entry = SessionEntry(key=key, session=session, source=source, refs=1)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # Lost a (direct-use) race; lease the resident entry and
                # drop the duplicate session before it builds anything.
                self._entries.move_to_end(key)
                existing.refs += 1
                self.stats.hits += 1
                session.close()
                return existing
            self._entries[key] = entry
            self.stats.misses += 1
            if hydrated:
                self.stats.hydrations += 1
            self.stats.peak_resident = max(self.stats.peak_resident, len(self._entries))
            self._evict_over_budget_locked()
            return entry

    def acquire_hit(self, key: str) -> SessionEntry | None:
        """Lease the resident entry for ``key`` if present, else ``None``.

        The cheap half of :meth:`acquire` — one short lock hold, no
        session construction — so callers on a latency-sensitive path
        (the serving tier's per-request checkout) can take a hit inline
        and only pay a worker-pool hop for the build-a-session miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                entry.refs += 1
                self.stats.hits += 1
            return entry

    def release(self, entry: SessionEntry) -> None:
        """Return a lease; evicts over-budget idle entries.

        Refreshes the entry's byte estimate first, outside the pool lock
        — sizing takes the session's lock, and holding both would stall
        unrelated pool traffic behind one session's long engine run.
        """
        if self.max_resident_bytes is not None:
            entry.cached_bytes = entry.session.resident_bytes()
        with self._lock:
            entry.refs = max(0, entry.refs - 1)
            self._evict_over_budget_locked()

    # ------------------------------------------------------------------
    # Hot-graph read replicas
    # ------------------------------------------------------------------
    def replica_for(self, entry: SessionEntry, limit: int) -> TCIMSession:
        """A read target for one pure-read query: primary or replica.

        Fans reads round-robin across the primary and up to ``limit``
        replicas, building replicas lazily from a generation-stamped
        snapshot of the primary's graph.  Replicas whose build generation
        trails the primary's are stale — a write landed — and are pruned
        here rather than served; readers fall back to the primary until a
        current replica is rebuilt.  Callers must hold a lease on
        ``entry`` (which they do: this runs inside served requests), so
        the entry cannot retire mid-call.
        """
        if limit < 1:
            return entry.session
        primary = entry.session
        with primary.lock:
            generation = primary.generation
        with entry.stats_lock:
            stale = [r for r in entry.replicas if r[1] != generation]
            if stale:
                entry.replicas = [
                    r for r in entry.replicas if r[1] == generation
                ]
            cursor = entry.replica_cursor
            entry.replica_cursor += 1
            slot = cursor % (limit + 1)
            if 0 < slot <= len(entry.replicas):
                target = entry.replicas[slot - 1][0]
            else:
                target = None
        for session, _ in stale:
            session.close()
        if stale:
            with self._lock:
                self.stats.replicas_retired += len(stale)
        if target is not None:
            return target
        if slot == 0:
            return primary
        # Build one replica outside all locks; snapshot the graph and its
        # generation atomically so the replica is stamped consistently.
        with primary.lock:
            graph = primary.graph
            build_generation = primary.generation
        if build_generation != generation:
            return primary  # a write landed mid-build; don't chase it
        replica = open_session(graph, primary.config, model=self._model)
        with entry.stats_lock:
            if (
                entry.known_generation == build_generation
                and len(entry.replicas) < limit
            ):
                entry.replicas.append((replica, build_generation))
                installed = True
            else:
                installed = False
        if not installed:
            replica.close()
            return primary
        with self._lock:
            self.stats.replicas_built += 1
        return replica

    def replica_count(self) -> int:
        """Currently-built replicas across all resident entries."""
        total = 0
        for entry in self.entries():
            with entry.stats_lock:
                total += len(entry.replicas)
        return total

    # ------------------------------------------------------------------
    # Budget and eviction
    # ------------------------------------------------------------------
    def resident_bytes(self) -> int:
        """Combined resident-structure estimate of every pooled session."""
        with self._lock:
            entries = list(self._entries.values())
        return sum(entry.session.resident_bytes() for entry in entries)

    def shared_bytes(self) -> int:
        """Combined shm-segment bytes of every pooled session.

        Refreshes the :attr:`PoolStats.shared_bytes` gauge as a side
        effect; 0 unless sessions run ``backing="shm"``.
        """
        with self._lock:
            entries = list(self._entries.values())
        total = sum(
            entry.session.resident_bytes_detail().get("shared", 0)
            for entry in entries
        )
        self.stats.shared_bytes = total
        return total

    def _over_budget_locked(self) -> bool:
        if len(self._entries) > self.max_sessions:
            return True
        if self.max_resident_bytes is None:
            return False
        # Cached estimates only: never touch session locks in here.
        return (
            sum(e.cached_bytes for e in self._entries.values())
            > self.max_resident_bytes
        )

    def _evict_over_budget_locked(self) -> None:
        while self._over_budget_locked():
            victim_key = next(
                (k for k, e in self._entries.items() if e.refs == 0), None
            )
            if victim_key is None:
                return  # everything is leased; trim on a later release
            self._retire_locked(victim_key)

    def _retire_locked(self, key: str) -> None:
        entry = self._entries.pop(key)
        with entry.stats_lock:
            replicas, entry.replicas = entry.replicas, []
        for session, _ in replicas:
            session.close()
        self.stats.replicas_retired += len(replicas)
        if entry.session.generation > 0:
            # The session was mutated since it was opened: write its
            # current graph back so a later acquire resumes from the
            # updated state instead of the original source.
            self._writeback[key] = (entry.source, entry.session.graph)
        self._page_out_locked(key, entry)
        entry.session.close()
        self.stats.evictions += 1
        self._retired.append(entry)
        del self._retired[:-MAX_RETIRED]

    def _page_out_locked(self, key: str, entry: SessionEntry) -> None:
        """Persist an eviction snapshot when the config spills to disk.

        Best-effort: a failed write leaves the graph write-back (or the
        original source) as the key's state of record, so paging can
        never make eviction less safe than it was without it.
        """
        storage_dir = entry.session.config.storage_dir
        if storage_dir is None or self._closing:
            return
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]
        target = Path(storage_dir) / "pool" / digest
        try:
            entry.session.snapshot(target, ensure=False)
            nbytes = snapshot_nbytes(target)
        except StorageError:
            shutil.rmtree(target, ignore_errors=True)
            self._snapshots.pop(key, None)
        else:
            self._snapshots[key] = (entry.source, target, nbytes)
            self.stats.snapshots_written += 1
        self.stats.spilled_bytes = sum(
            nbytes for _, _, nbytes in self._snapshots.values()
        )

    def evict(self, source, config=None, **overrides) -> bool:
        """Explicitly evict one idle entry; returns whether it was resident."""
        key = self.key_for(source, config, overrides)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.refs > 0:
                return False
            self._retire_locked(key)
            return True

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def resident(self) -> int:
        """Number of currently resident sessions."""
        with self._lock:
            return len(self._entries)

    def entries(self) -> list[SessionEntry]:
        """Snapshot of the resident entries, LRU-oldest first."""
        with self._lock:
            return list(self._entries.values())

    def retired(self) -> list[SessionEntry]:
        """Evicted entries retained for reporting (bounded, oldest first)."""
        with self._lock:
            return list(self._retired)

    def writeback_bytes(self) -> int:
        """Edge storage pinned by write-back snapshots (not evictable)."""
        with self._lock:
            return sum(
                graph.edge_array().nbytes
                for _, graph in self._writeback.values()
            )

    def close(self) -> None:
        """Tear the pool down: evict everything and drop write-back state.

        Terminal — unlike budget eviction, close discards the write-back
        state and deletes on-disk eviction snapshots too, so a closed
        pool's keys resolve from their original sources again.
        """
        with self._lock:
            self._closing = True
            for key in list(self._entries):
                self._retire_locked(key)
            self._writeback.clear()
            for _, target, _ in self._snapshots.values():
                shutil.rmtree(target, ignore_errors=True)
            self._snapshots.clear()
            self.stats.spilled_bytes = 0
