"""Incremental (streaming) updates on the vectorized fast path.

:class:`repro.core.dynamic.DynamicTriangleCounter` maintains the count
under edge insertions/deletions with pure-Python set intersections —
exact, but untouched by the ~29x batched engine.  This module routes a
*batch* of updates through :func:`repro.core.engine.execute_batched`
itself, as a delta re-join of only the affected rows' slice pairs.

Mathematical core
-----------------
Let ``A`` be the symmetric adjacency matrix of the base graph and ``D``
the (symmetric, disjoint) adjacency matrix of the batch of new edges.
The triangles gained by ``A -> A + D`` split by how many delta edges
each new triangle uses:

* **1 delta edge** — for each delta edge ``{u, v}``, the common
  neighbours of ``u`` and ``v`` in ``A``: a join of two ``A`` rows;
* **2 delta edges** — ``tr(DAD) / 2``: for each *directed* delta edge
  ``(u, v)``, a join of ``A``'s row ``u`` against ``D``'s row ``v``;
* **3 delta edges** — ``tr(D^3) / 6``: for each delta edge ``{u, v}``,
  a join of two ``D`` rows (each all-new triangle is seen three times).

Every term is exactly the dataflow :func:`execute_batched` implements —
ANDing valid slice pairs of a "row" structure against a "column"
structure over an edge list and popcounting — so each term runs on the
vectorized engine with its own event accounting, touching only the rows
the batch references.  Deletions are the time-reversed picture: remove
the edges first, then the same three terms on the *post-deletion* graph
count the destroyed triangles.

Sharding
--------
Each term's edge list is partitioned with
:func:`repro.core.sharding.plan_shards` across ``config.num_arrays``
simulated arrays (same partitioners, same per-array capacity split as a
full sharded run) and the per-shard :class:`EventCounts` deltas merge
with :meth:`EventCounts.merge` — incremental updates get the same
critical-path pricing story as full sharded runs.  With
``num_arrays=1`` the terms run as single calls into the engine, so the
results are bit-identical to the single-array vectorized kernel.

The differential oracle remains :class:`DynamicTriangleCounter`; the
randomized op-stream suite in ``tests/test_api.py`` checks this module
against it op by op.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.accelerator import AcceleratorConfig, EventCounts
from repro.core.engine import execute_batched
from repro.core.reuse import CacheStatistics
from repro.core.sharding import plan_shards
from repro.core.slicing import SlicedMatrix
from repro.errors import ArchitectureError, GraphError

__all__ = [
    "DeltaOutcome",
    "StructureDelta",
    "canonical_delta_edges",
    "delta_sliced",
    "set_bit",
    "set_bits",
    "clear_bit",
    "clear_bits",
    "symmetric_delta",
]


@dataclass
class DeltaOutcome:
    """Result of one incremental batch join.

    ``triangles`` is the number of triangles the batch creates (for
    insertions) or destroys (for deletions) — always non-negative; the
    caller applies the sign.  ``events`` and ``cache_stats`` account the
    engine work of all three terms, merged across shards.
    """

    triangles: int
    events: EventCounts = field(default_factory=EventCounts)
    cache_stats: CacheStatistics = field(default_factory=CacheStatistics)


# ----------------------------------------------------------------------
# Delta edge handling
# ----------------------------------------------------------------------
def canonical_delta_edges(edges, num_vertices: int) -> np.ndarray:
    """Normalise a batch of undirected edges into canonical delta form.

    Returns an ``(k, 2)`` int64 array with ``u < v`` per row, self-loops
    dropped, duplicates merged, sorted lexicographically (the iteration
    order :func:`execute_batched` expects).  Raises
    :class:`~repro.errors.GraphError` on out-of-range endpoints.
    """
    array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if array.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    array = array.astype(np.int64, copy=False).reshape(-1, 2)
    low, high = int(array.min()), int(array.max())
    if low < 0 or high >= num_vertices:
        raise GraphError(
            f"edge endpoint out of range [0, {num_vertices}): "
            f"saw vertex {low if low < 0 else high}"
        )
    u = np.minimum(array[:, 0], array[:, 1])
    v = np.maximum(array[:, 0], array[:, 1])
    keep = u != v
    u, v = u[keep], v[keep]
    if u.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    keys = np.unique(u * np.int64(num_vertices) + v)
    out = np.empty((keys.size, 2), dtype=np.int64)
    out[:, 0] = keys // num_vertices
    out[:, 1] = keys % num_vertices
    return out


def delta_sliced(
    delta_edges: np.ndarray, num_vertices: int, slice_bits: int
) -> SlicedMatrix:
    """Symmetric :class:`SlicedMatrix` of a canonical delta edge batch."""
    u, v = delta_edges[:, 0], delta_edges[:, 1]
    return SlicedMatrix.from_nonzeros(
        np.concatenate([u, v]),
        np.concatenate([v, u]),
        num_vertices,
        num_vertices,
        slice_bits=slice_bits,
    )


# ----------------------------------------------------------------------
# In-place bit maintenance of a symmetric SlicedMatrix
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StructureDelta:
    """Structural change report of one :func:`set_bits`/:func:`clear_bits`.

    Describes exactly how the valid-slice arrays moved, in the
    coordinates a position-holding artifact (the keys cache, a resident
    :class:`~repro.core.plan.JoinPlan`) needs to renumber itself:

    ``inserted_before``
        Sorted insertion points in *pre-insert* coordinates — the
        ``obj`` argument handed to :func:`np.insert` (duplicates mark
        several new slices landing at one point).  A pre-mutation
        position ``p`` now lives at
        ``p + searchsorted(inserted_before, p, side="right")``.
    ``removed_at``
        Sorted removed positions in *pre-delete* coordinates; a
        surviving position ``p`` now lives at
        ``p - searchsorted(removed_at, p)``.
    ``inserted_rows`` / ``removed_rows``
        Owning row of each inserted/removed slice (aligned with the
        position arrays) — the rows whose valid-slice *set* changed,
        i.e. whose join pairs must be recomputed.

    One call only ever inserts (``set_bits``) or removes
    (``clear_bits``), never both.  :attr:`changed` is ``False`` for a
    payload-only mutation, whose positions all stay valid.
    """

    inserted_before: np.ndarray
    inserted_rows: np.ndarray
    removed_at: np.ndarray
    removed_rows: np.ndarray

    @property
    def changed(self) -> bool:
        return bool(self.inserted_before.size or self.removed_at.size)

    @classmethod
    def unchanged(cls) -> "StructureDelta":
        empty = np.empty(0, dtype=np.int64)
        return cls(empty, empty, empty, empty)


def set_bits(
    sliced: SlicedMatrix, rows: np.ndarray, cols: np.ndarray
) -> StructureDelta:
    """Set many bits at once, inserting new valid slices as needed.

    One ``np.insert`` covers every structural change of the batch, so a
    k-bit update costs ``O(N_VS + k log N_VS)`` instead of the
    ``O(k * N_VS)`` a per-bit loop would pay.  Keeps the CSR-of-slices
    invariants (ascending slice ids per row, no invalid slices stored),
    so a mutated matrix is indistinguishable from one rebuilt from
    scratch — the property the equivalence tests rely on.

    Returns a :class:`StructureDelta` naming the inserted slices (empty
    for a payload-only update), and bumps
    :attr:`SlicedMatrix.structure_version` iff slices were inserted.
    """
    rows, cols, positions, exists, bytes_, masks = _locate_bits(sliced, rows, cols)
    if rows.size == 0:
        return StructureDelta.unchanged()
    # Existing slices: in-place OR.  ``.at`` handles several bits landing
    # in the same (slice, byte) cell.
    if exists.any():
        np.bitwise_or.at(
            sliced.data, (positions[exists], bytes_[exists]), masks[exists]
        )
    missing = ~exists
    if not missing.any():
        return StructureDelta.unchanged()
    # New slices: group the missing bits by global slice key, build each
    # payload, and splice them all in with one insert per array.
    spr = np.int64(sliced.slices_per_row)
    keys = rows[missing] * spr + cols[missing] // sliced.slice_bits
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    head = np.empty(keys_sorted.size, dtype=bool)
    if keys_sorted.size:
        head[0] = True
        np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=head[1:])
    unique_keys = keys_sorted[head]
    ordinal = np.cumsum(head) - 1
    payloads = np.zeros((unique_keys.size, sliced.slice_bits // 8), dtype=np.uint8)
    np.bitwise_or.at(
        payloads, (ordinal, bytes_[missing][order]), masks[missing][order]
    )
    # A missing bit's located position is exactly where its new slice
    # belongs, so no second search over the structure is needed.
    insert_at = positions[missing][order][head]
    sliced.slice_ids = np.insert(
        sliced.slice_ids, insert_at, unique_keys % spr
    )
    sliced.data = np.insert(sliced.data, insert_at, payloads, axis=0)
    owner_rows = (unique_keys // spr).astype(np.int64)
    owner_counts = np.bincount(owner_rows, minlength=sliced.num_rows)
    sliced.indptr[1:] += np.cumsum(owner_counts)
    sliced.mark_structure_changed()
    empty = np.empty(0, dtype=np.int64)
    return StructureDelta(
        inserted_before=insert_at.astype(np.int64),
        inserted_rows=owner_rows,
        removed_at=empty,
        removed_rows=empty,
    )


def clear_bits(
    sliced: SlicedMatrix, rows: np.ndarray, cols: np.ndarray
) -> StructureDelta:
    """Clear many bits at once, dropping slices that become empty.

    Returns a :class:`StructureDelta` naming the dropped slices (empty
    when every touched slice kept at least one bit), and bumps
    :attr:`SlicedMatrix.structure_version` iff slices were dropped.
    """
    rows, cols, positions, exists, bytes_, masks = _locate_bits(sliced, rows, cols)
    if not exists.any():
        return StructureDelta.unchanged()
    np.bitwise_and.at(
        sliced.data,
        (positions[exists], bytes_[exists]),
        np.bitwise_not(masks[exists]),
    )
    touched = np.unique(positions[exists])
    emptied = touched[~sliced.data[touched].any(axis=1)]
    if emptied.size == 0:
        return StructureDelta.unchanged()
    owners = np.searchsorted(sliced.indptr, emptied, side="right") - 1
    sliced.slice_ids = np.delete(sliced.slice_ids, emptied)
    sliced.data = np.delete(sliced.data, emptied, axis=0)
    sliced.indptr[1:] -= np.cumsum(
        np.bincount(owners, minlength=sliced.num_rows)
    )
    sliced.mark_structure_changed()
    empty = np.empty(0, dtype=np.int64)
    return StructureDelta(
        inserted_before=empty,
        inserted_rows=empty,
        removed_at=emptied.astype(np.int64),
        removed_rows=owners.astype(np.int64),
    )


def set_bit(sliced: SlicedMatrix, row: int, col: int) -> StructureDelta:
    """Single-bit convenience wrapper over :func:`set_bits`."""
    return set_bits(sliced, np.array([row]), np.array([col]))


def clear_bit(sliced: SlicedMatrix, row: int, col: int) -> StructureDelta:
    """Single-bit convenience wrapper over :func:`clear_bits`."""
    return clear_bits(sliced, np.array([row]), np.array([col]))


def _locate_bits(sliced: SlicedMatrix, rows, cols):
    """Vectorized lookup of each bit's slice position.

    Returns ``(rows, cols, positions, exists, byte_index, bit_mask)``
    int64/bool/uint8 arrays; ``positions[i]`` is the index of bit ``i``'s
    slice in the valid-slice arrays when ``exists[i]``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape:
        raise GraphError(
            f"rows/cols must be matching 1-D arrays, got {rows.shape} vs {cols.shape}"
        )
    if rows.size and (
        rows.min() < 0
        or rows.max() >= sliced.num_rows
        or cols.min() < 0
        or cols.max() >= sliced.num_cols
    ):
        raise GraphError(
            f"bit out of range for a ({sliced.num_rows}, {sliced.num_cols}) matrix"
        )
    slice_of = cols // sliced.slice_bits
    keys = rows * np.int64(sliced.slices_per_row) + slice_of
    if rows.size <= 64:
        # Small batches (the per-op differential mode, single-edge
        # updates) search each row's slice-id segment directly instead of
        # materialising the O(N_VS) global key array.
        positions = np.empty(rows.size, dtype=np.int64)
        exists = np.empty(rows.size, dtype=bool)
        indptr, slice_ids = sliced.indptr, sliced.slice_ids
        for i in range(rows.size):
            lo, hi = int(indptr[rows[i]]), int(indptr[rows[i] + 1])
            position = lo + int(np.searchsorted(slice_ids[lo:hi], slice_of[i]))
            positions[i] = position
            exists[i] = position < hi and int(slice_ids[position]) == slice_of[i]
    else:
        global_keys = sliced.global_keys()
        positions = np.searchsorted(global_keys, keys)
        if global_keys.size:
            clamped = np.minimum(positions, global_keys.size - 1)
            exists = global_keys[clamped] == keys
        else:
            exists = np.zeros(rows.size, dtype=bool)
    within = cols % sliced.slice_bits
    bytes_ = within // 8
    masks = (np.uint8(1) << (within % 8).astype(np.uint8)).astype(np.uint8)
    return rows, cols, positions, exists, bytes_, masks


# ----------------------------------------------------------------------
# The delta re-join
# ----------------------------------------------------------------------
def symmetric_delta(
    num_vertices: int,
    base_sym: SlicedMatrix,
    delta_edges: np.ndarray,
    config: AcceleratorConfig,
) -> DeltaOutcome:
    """Triangles created (or, time-reversed, destroyed) by a delta batch.

    ``base_sym`` is the symmetric slice structure of the base graph —
    *excluding* every edge in ``delta_edges`` (for insertions: the state
    before the batch; for deletions: the state after removal).
    ``delta_edges`` is canonical (see :func:`canonical_delta_edges`) and
    must be disjoint from the base edge set; overlap silently miscounts,
    so the session filters no-op edges before calling in.

    Only the vertex count is needed, not a :class:`Graph` — the planner
    and the engine consume explicit edge arrays here, so a session can
    keep applying batches without ever materialising a graph snapshot.

    The three inclusion–exclusion terms each run on the vectorized
    engine, sharded across ``config.num_arrays`` simulated arrays, and
    the returned :class:`EventCounts` / cache statistics merge every
    term's and every shard's accounting.
    """
    if delta_edges.size == 0:
        return DeltaOutcome(triangles=0)
    slice_bits = config.slice_bits
    if base_sym.slice_bits != slice_bits:
        raise ArchitectureError(
            f"base structure uses {base_sym.slice_bits}-bit slices but the "
            f"config asks for {slice_bits}"
        )
    d_sym = delta_sliced(delta_edges, num_vertices, slice_bits)
    undirected_src = delta_edges[:, 0]
    undirected_dst = delta_edges[:, 1]
    # Both directions of every delta edge, in engine iteration order.
    directed_src = np.concatenate([undirected_src, undirected_dst])
    directed_dst = np.concatenate([undirected_dst, undirected_src])
    order = np.lexsort((directed_dst, directed_src))
    directed_src, directed_dst = directed_src[order], directed_dst[order]
    # (row structure, column structure, edges, divisor): the three terms of
    # the module docstring.  Divisors fold the multiplicity with which each
    # term sees a triangle back to 1.
    terms = (
        (base_sym, base_sym, undirected_src, undirected_dst, 1),
        (base_sym, d_sym, directed_src, directed_dst, 2),
        (d_sym, d_sym, undirected_src, undirected_dst, 3),
    )
    per_array_capacity = config.capacity_slices // max(config.num_arrays, 1)
    triangles = 0
    events = EventCounts()
    cache_stats = CacheStatistics()
    for row_sliced, col_sliced, sources, destinations, divisor in terms:
        if config.num_arrays > 1:
            # Coloring is an edge-ownership partitioner for resident
            # contexts; the transient inclusion–exclusion terms here are
            # position-split instead (degree-LPT balances them best).
            shard_by = (
                "degree" if config.shard_by == "coloring" else config.shard_by
            )
            plan = plan_shards(
                None, "symmetric", config.num_arrays, shard_by,
                sources=sources,
            )
            shard_positions = plan.assignments
        else:
            shard_positions = (np.arange(sources.size, dtype=np.int64),)
        accumulator = 0
        for positions in shard_positions:
            if positions.size == 0:
                continue
            shard_sources = sources[positions]
            shard_destinations = destinations[positions]
            _, touched_counts = row_sliced.row_slice_ranges(
                np.unique(shard_sources)
            )
            row_region = int(touched_counts.max(initial=0))
            column_capacity = per_array_capacity - row_region
            if column_capacity < 1:
                raise ArchitectureError(
                    f"incremental batch needs a row region of {row_region} "
                    f"slices but the per-array capacity is "
                    f"{per_array_capacity}; use fewer arrays or a larger array"
                )
            shard_accumulator, fields, shard_cache = execute_batched(
                None,
                row_sliced,
                col_sliced,
                "symmetric",
                column_capacity,
                policy=config.policy,
                seed=config.seed,
                edges=(shard_sources, shard_destinations),
                row_writes=int(touched_counts.sum()),
            )
            accumulator += shard_accumulator
            events = events.merge(EventCounts(**fields))
            cache_stats = cache_stats.merge(shard_cache)
        if accumulator % divisor:
            raise ArchitectureError(
                f"delta re-join parity violated: term accumulator "
                f"{accumulator} is not divisible by {divisor} — the delta "
                "batch overlaps the base edge set"
            )
        triangles += accumulator // divisor
    return DeltaOutcome(
        triangles=triangles, events=events, cache_stats=cache_stats
    )
