"""Column-slice access traces (replay substrate for cache studies).

The replacement-policy ablation needs the exact sequence of column-slice
touches Algorithm 1 generates.  Rather than re-deriving it inside each
benchmark, this module extracts the trace once and offers replay helpers;
:func:`repro.core.reuse.simulate_trace` and
:func:`repro.core.reuse.belady_trace_statistics` consume the result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reuse import (
    CacheStatistics,
    ReplacementPolicy,
    belady_trace_statistics,
    simulate_trace,
)
from repro.core.slicing import SlicedMatrix, valid_pair_positions
from repro.errors import ArchitectureError
from repro.graph.graph import Graph

__all__ = ["AccessTrace", "extract_column_trace", "compare_policies"]


@dataclass
class AccessTrace:
    """One run's column-slice access sequence plus sizing context."""

    #: ``(column, slice_index)`` keys in touch order.
    accesses: list[tuple[int, int]]
    #: Maximum valid slices of any single row (the row-region reservation).
    row_region_slices: int
    #: Distinct column slices ever touched.
    distinct_slices: int

    def __len__(self) -> int:
        return len(self.accesses)

    def column_cache_capacity(self, array_bytes: int, slice_bits: int = 64) -> int:
        """Column-cache slots for a given array size (after the row region)."""
        capacity = array_bytes // (slice_bits // 8) - self.row_region_slices
        if capacity < 1:
            raise ArchitectureError(
                f"array of {array_bytes} bytes leaves no column capacity after "
                f"the {self.row_region_slices}-slice row region"
            )
        return capacity


def extract_column_trace(graph: Graph, slice_bits: int = 64) -> AccessTrace:
    """Replay Algorithm 1's traversal and record every column-slice touch.

    Matches :class:`repro.core.accelerator.TCIMAccelerator` exactly: rows
    ascending, successors ascending, one access per valid slice pair.
    """
    rows = SlicedMatrix.from_graph(graph, "upper", slice_bits=slice_bits)
    cols = SlicedMatrix.from_graph(graph, "lower", slice_bits=slice_bits)
    accesses: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    indptr, indices = graph.csr
    for row in range(graph.num_vertices):
        neighbours = indices[indptr[row]: indptr[row + 1]]
        successors = neighbours[neighbours > row]
        if successors.size == 0:
            continue
        row_ids, _ = rows.row_slices(row)
        if row_ids.size == 0:
            continue
        for column in successors.tolist():
            col_ids, _ = cols.row_slices(column)
            if col_ids.size == 0:
                continue
            _, col_pos = valid_pair_positions(row_ids, col_ids)
            for position in col_pos.tolist():
                key = (column, int(col_ids[position]))
                accesses.append(key)
                seen.add(key)
    return AccessTrace(
        accesses=accesses,
        row_region_slices=int(rows.row_valid_counts().max(initial=0)),
        distinct_slices=len(seen),
    )


def compare_policies(
    trace: AccessTrace,
    array_bytes: int,
    slice_bits: int = 64,
    seed: int = 0,
) -> dict[str, CacheStatistics]:
    """Replay one trace under every online policy plus offline Belady."""
    capacity = trace.column_cache_capacity(array_bytes, slice_bits)
    results: dict[str, CacheStatistics] = {}
    for policy in ReplacementPolicy:
        results[policy.value] = simulate_trace(
            trace.accesses, capacity, policy=policy, seed=seed
        )
    results["belady"] = belady_trace_statistics(trace.accesses, capacity)
    return results
