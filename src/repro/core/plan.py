"""Resident join plans: compile the valid-pair index once, reuse forever.

The paper's central software insight (Section IV-B, Table IV) is that
only *valid slice pairs* ever reach the computational array — and for a
resident graph, which pairs those are is a pure function of the slice
*structure*, not of the payload bits.  Yet every query through
:func:`repro.core.engine.execute_batched` re-derives them: candidate
expansion, the merge-join against the sorted global keys, and the
column-key cache trace are recomputed per call, which dominates repeat
queries on an unchanged graph (the serving tier's bread and butter).

A :class:`JoinPlan` materialises that derivation once:

* ``row_positions`` / ``col_positions`` — the matched pair positions
  into the row/column :class:`~repro.core.slicing.SlicedMatrix` payload
  arrays, in the exact legacy iteration order (int32 wherever the
  position space allows);
* ``trace_keys`` — the column-slice cache trace the pairs induce, whose
  hit/miss/exchange classification is memoised per cache configuration;
* ``pair_counts`` — pairs per oriented edge, so any edge subset (a
  shard of the Fig. 4 bank organisation) can slice its own sub-plan out
  with :meth:`JoinPlan.subset`.

With a plan, a query is gather → AND → popcount and nothing else; the
engine's ``plan=`` fast path is bit-identical to the plan-free one.

Plans stay *coherent* with their structures through
:attr:`SlicedMatrix.structure_version`: the in-place slice maintenance
of :mod:`repro.core.incremental` reports every structural change as a
:class:`~repro.core.incremental.StructureDelta`, and
:func:`patch_join_plan` splices exactly the affected edges' pair sets
into a new plan — position renumbering for shifted slices, a delta
re-join only for edges whose endpoint structures changed — instead of
recompiling the whole thing.  ``tests/test_plan.py`` asserts a patched
plan is array-equal to a from-scratch rebuild after every operation of
randomized insert/delete streams.

This mirrors what real-PIM follow-ups observe (PIM-TC, Asquini et al.
2025): precomputed, partition-local work assignments are what make
repeated and dynamic triangle workloads pay off on processing-in-memory
substrates.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core import engine
from repro.core.incremental import StructureDelta
from repro.core.reuse import CacheStatistics, ReplacementPolicy, simulate_key_trace
from repro.core.slicing import SlicedMatrix
from repro.errors import ArchitectureError

__all__ = [
    "FusedPlan",
    "JoinPlan",
    "build_join_plan",
    "fuse_plans",
    "patch_join_plan",
    "merge_oriented_edges",
    "oriented_structure_bits",
]


def _position_dtype(size: int) -> np.dtype:
    """int32 wherever the position space allows, int64 beyond."""
    return np.dtype(np.int32 if size <= np.iinfo(np.int32).max else np.int64)


def _alloc(store, shape, dtype) -> np.ndarray:
    """Uninitialised array through a backing store (heap when ``store=None``)."""
    if store is None:
        return np.empty(shape, dtype=dtype)
    return store.empty(shape, dtype)


def _adopt(store, array: np.ndarray) -> np.ndarray:
    """Move an array into the store's backing (identity when ``store=None``)."""
    if store is None:
        return array
    return store.adopt(array)


def _expand_runs(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices of the runs ``[starts[i], starts[i] + counts[i])``.

    The engine's batch-expansion trick: one ``arange`` plus a repeat of
    the per-run delta enumerates every run element at once.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    delta = starts.astype(np.int64, copy=False) - offsets
    return np.arange(total, dtype=np.int64) + np.repeat(delta, counts)


@dataclass(eq=False)
class JoinPlan:
    """The compiled valid-pair index of one oriented edge list.

    Built by :func:`build_join_plan` against a specific pair of slice
    structures; validity is keyed on their
    :attr:`~repro.core.slicing.SlicedMatrix.structure_version` (payload
    mutation inside existing slices leaves a plan valid — the positions
    and the trace depend only on which slices exist).  Plans are
    immutable in practice: :func:`patch_join_plan` returns a *new* plan,
    so a reader holding a reference never observes a half-patched state.
    """

    #: Matched pair position into the row structure's payload array.
    row_positions: np.ndarray
    #: Matched pair position into the column structure's payload array.
    col_positions: np.ndarray
    #: Column-structure global key of each pair — the cache access trace.
    trace_keys: np.ndarray
    #: Pairs per oriented edge (aligned with the compiled edge list).
    pair_counts: np.ndarray
    #: Edges the plan covers.
    num_edges: int
    #: ``structure_version`` of the row structure at compile/patch time.
    row_version: int
    #: ``structure_version`` of the column structure at compile/patch time.
    col_version: int
    #: Valid-slice counts at compile time (second staleness guard: two
    #: *different* structures can share a version counter value).
    row_valid_slices: int
    col_valid_slices: int
    _bounds: np.ndarray | None = field(default=None, repr=False)
    #: ``(capacity, policy, seed) -> CacheStatistics`` — the trace is part
    #: of the plan, so its classification per cache configuration is too.
    _stats_memo: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_pairs(self) -> int:
        """Matched valid slice pairs (= AND operations per query)."""
        return int(self.row_positions.size)

    @property
    def nbytes(self) -> int:
        """Resident footprint of the plan arrays (pool-budget quantity)."""
        return (
            self.row_positions.nbytes
            + self.col_positions.nbytes
            + self.trace_keys.nbytes
            + self.pair_counts.nbytes
        )

    @property
    def bounds(self) -> np.ndarray:
        """Exclusive prefix bounds of each edge's pair run (cached)."""
        if self._bounds is None:
            bounds = np.zeros(self.num_edges + 1, dtype=np.int64)
            np.cumsum(self.pair_counts, out=bounds[1:])
            self._bounds = bounds
        return self._bounds

    def staleness(
        self, row_sliced: SlicedMatrix, col_sliced: SlicedMatrix
    ) -> str | None:
        """Why this plan cannot serve these structures (``None`` = current)."""
        if (
            self.row_version != row_sliced.structure_version
            or self.row_valid_slices != row_sliced.num_valid_slices
        ):
            return (
                f"row structure moved to version "
                f"{row_sliced.structure_version} "
                f"({row_sliced.num_valid_slices} slices), plan was compiled "
                f"at version {self.row_version} ({self.row_valid_slices})"
            )
        if (
            self.col_version != col_sliced.structure_version
            or self.col_valid_slices != col_sliced.num_valid_slices
        ):
            return (
                f"column structure moved to version "
                f"{col_sliced.structure_version} "
                f"({col_sliced.num_valid_slices} slices), plan was compiled "
                f"at version {self.col_version} ({self.col_valid_slices})"
            )
        return None

    def matches(self, row_sliced: SlicedMatrix, col_sliced: SlicedMatrix) -> bool:
        """Whether the plan is current for these structures."""
        return self.staleness(row_sliced, col_sliced) is None

    # ------------------------------------------------------------------
    # Query-time services
    # ------------------------------------------------------------------
    def cache_statistics(self, capacity: int, policy, seed: int) -> CacheStatistics:
        """Hit/miss/exchange classification of the plan's trace (memoised).

        The trace is a plan artifact, so for a fixed cache configuration
        its simulation result is too; repeat queries pay a dictionary
        lookup instead of an O(n log n) trace pass.  A fresh copy is
        returned per call so callers may merge/mutate freely.
        """
        key = (int(capacity), ReplacementPolicy(policy).value, int(seed))
        stats = self._stats_memo.get(key)
        if stats is None:
            stats = simulate_key_trace(
                self.trace_keys, capacity, policy=policy, seed=seed
            )
            self._stats_memo[key] = stats
        return dataclasses.replace(stats)

    def subset(self, positions: np.ndarray) -> "JoinPlan":
        """The sub-plan of an edge subset (one shard's share of the plan).

        ``positions`` are ascending indices into the compiled edge list —
        exactly one entry of a :class:`~repro.core.sharding.ShardPlan`'s
        ``assignments`` — so the sub-plan's pair order matches what a
        plan-free run over that edge subset would produce.
        """
        positions = np.asarray(positions, dtype=np.int64)
        counts = self.pair_counts[positions]
        take = _expand_runs(self.bounds[positions], counts)
        return JoinPlan(
            row_positions=self.row_positions[take],
            col_positions=self.col_positions[take],
            trace_keys=self.trace_keys[take],
            pair_counts=counts,
            num_edges=int(positions.size),
            row_version=self.row_version,
            col_version=self.col_version,
            row_valid_slices=self.row_valid_slices,
            col_valid_slices=self.col_valid_slices,
        )


def build_join_plan(
    row_sliced: SlicedMatrix,
    col_sliced: SlicedMatrix,
    sources: np.ndarray,
    destinations: np.ndarray,
    batch_candidates: int = engine.DEFAULT_BATCH_CANDIDATES,
    *,
    chunk_edges: int | None = None,
    store=None,
) -> JoinPlan:
    """Compile the join plan of an oriented edge list — the one-time cost.

    Runs the engine's own merge-join (:func:`repro.core.engine.join_batches`)
    and records, instead of executing, every matched pair.  Sharing the
    join keeps the compiled plan structurally identical to what the
    plan-free executor would derive per query.

    ``chunk_edges`` streams the compile through bounded edge windows:
    each window's matched pairs are materialised, pushed into ``store``
    (spilling to disk when large), and released before the next window
    starts, so peak heap during compile is O(window pairs) instead of
    O(total pairs).  The join order is window-independent (edges in
    input order, slice ids ascending per edge — see
    :func:`~repro.core.engine.join_batches`), so the chunked result is
    array-equal to the unchunked one.  ``store`` alone (no chunking)
    still moves the finished plan arrays into spill backing.
    """
    sources = np.asarray(sources, dtype=np.int64)
    destinations = np.asarray(destinations, dtype=np.int64)
    num_edges = int(sources.size)
    if chunk_edges is not None:
        if chunk_edges <= 0:
            raise ArchitectureError(
                f"chunk_edges must be a positive edge-window size, got {chunk_edges}"
            )
        if num_edges > chunk_edges:
            return _build_join_plan_chunked(
                row_sliced, col_sliced, sources, destinations,
                batch_candidates, int(chunk_edges), store,
            )
    row_parts: list[np.ndarray] = []
    col_parts: list[np.ndarray] = []
    edge_parts: list[np.ndarray] = []
    for row_hit, col_hit, edge_ids in engine.join_batches(
        row_sliced, col_sliced, sources, destinations,
        batch_candidates, with_edge_ids=True,
    ):
        row_parts.append(row_hit)
        col_parts.append(col_hit)
        edge_parts.append(edge_ids)
    row_dtype = _position_dtype(max(row_sliced.num_valid_slices, 1) - 1)
    col_dtype = _position_dtype(max(col_sliced.num_valid_slices, 1) - 1)
    key_space = col_sliced.num_rows * col_sliced.slices_per_row
    trace_dtype = _position_dtype(key_space)
    if row_parts:
        row_positions = np.concatenate(row_parts).astype(row_dtype, copy=False)
        col_positions = np.concatenate(col_parts).astype(col_dtype, copy=False)
        edge_ids = np.concatenate(edge_parts)
        pair_counts = np.bincount(edge_ids, minlength=num_edges)
        trace_keys = col_sliced.global_keys()[col_positions].astype(
            trace_dtype, copy=False
        )
    else:
        row_positions = np.empty(0, dtype=row_dtype)
        col_positions = np.empty(0, dtype=col_dtype)
        pair_counts = np.zeros(num_edges, dtype=np.int64)
        trace_keys = np.empty(0, dtype=trace_dtype)
    return JoinPlan(
        row_positions=_adopt(store, row_positions),
        col_positions=_adopt(store, col_positions),
        trace_keys=_adopt(store, trace_keys),
        pair_counts=pair_counts.astype(np.int64, copy=False),
        num_edges=num_edges,
        row_version=row_sliced.structure_version,
        col_version=col_sliced.structure_version,
        row_valid_slices=row_sliced.num_valid_slices,
        col_valid_slices=col_sliced.num_valid_slices,
    )


def _build_join_plan_chunked(
    row_sliced: SlicedMatrix,
    col_sliced: SlicedMatrix,
    sources: np.ndarray,
    destinations: np.ndarray,
    batch_candidates: int,
    chunk_edges: int,
    store,
) -> JoinPlan:
    """The bounded-window compile loop behind ``build_join_plan(chunk_edges=)``.

    One window at a time: join, record the window's pairs, adopt them
    into the store (disk when large), release the heap copy.  After the
    sweep the per-window records are copied — window by window — into
    the final store-allocated arrays, so neither pass ever holds more
    than one window of pair records on the heap.
    """
    num_edges = int(sources.size)
    row_dtype = _position_dtype(max(row_sliced.num_valid_slices, 1) - 1)
    col_dtype = _position_dtype(max(col_sliced.num_valid_slices, 1) - 1)
    trace_dtype = _position_dtype(col_sliced.num_rows * col_sliced.slices_per_row)
    col_keys = col_sliced.global_keys()
    pair_counts = np.zeros(num_edges, dtype=np.int64)
    windows: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for start in range(0, num_edges, chunk_edges):
        stop = min(start + chunk_edges, num_edges)
        row_parts: list[np.ndarray] = []
        col_parts: list[np.ndarray] = []
        edge_parts: list[np.ndarray] = []
        # edge_ids are relative to the window's edge slice, exactly the
        # offsets needed for this pair_counts stripe.
        for row_hit, col_hit, edge_ids in engine.join_batches(
            row_sliced, col_sliced, sources[start:stop], destinations[start:stop],
            batch_candidates, with_edge_ids=True,
        ):
            row_parts.append(row_hit)
            col_parts.append(col_hit)
            edge_parts.append(edge_ids)
        if not row_parts:
            continue
        rows = np.concatenate(row_parts).astype(row_dtype, copy=False)
        cols = np.concatenate(col_parts)
        pair_counts[start:stop] = np.bincount(
            np.concatenate(edge_parts), minlength=stop - start
        )
        windows.append(
            (
                _adopt(store, rows),
                _adopt(store, cols.astype(col_dtype, copy=False)),
                _adopt(store, col_keys[cols].astype(trace_dtype, copy=False)),
            )
        )
    total = int(pair_counts.sum())
    row_positions = _alloc(store, total, row_dtype)
    col_positions = _alloc(store, total, col_dtype)
    trace_keys = _alloc(store, total, trace_dtype)
    offset = 0
    while windows:
        # Pop as we copy so each window's (possibly spilled) staging
        # arrays are reclaimed before the next one lands.
        rows, cols, traces = windows.pop(0)
        size = rows.size
        row_positions[offset: offset + size] = rows
        col_positions[offset: offset + size] = cols
        trace_keys[offset: offset + size] = traces
        offset += size
    return JoinPlan(
        row_positions=row_positions,
        col_positions=col_positions,
        trace_keys=trace_keys,
        pair_counts=pair_counts,
        num_edges=num_edges,
        row_version=row_sliced.structure_version,
        col_version=col_sliced.structure_version,
        row_valid_slices=row_sliced.num_valid_slices,
        col_valid_slices=col_sliced.num_valid_slices,
    )


# ----------------------------------------------------------------------
# Cross-plan fusion
# ----------------------------------------------------------------------
@dataclass(eq=False)
class FusedPlan:
    """Several compiled plans concatenated into one fused pair space.

    The serving tier's fusion scheduler groups compatible queries across
    *different* resident sessions and executes the whole group as one
    gather → AND → popcount sweep.  A fused plan is the index of that
    sweep: each member plan's gather positions shifted by its segment's
    payload-row offset (so they address a virtually *stacked* payload —
    segment 0's rows first, then segment 1's, ...), plus the pair-space
    bounds needed to split the fused reductions back per segment.

    Fusion is pure concatenation: the pair order inside each segment is
    exactly the member plan's order, so every per-segment reduction is
    bit-identical to running that plan alone.
    """

    #: Fused gather positions into the stacked row payload (offset-baked).
    row_positions: np.ndarray
    #: Fused gather positions into the stacked column payload.
    col_positions: np.ndarray
    #: Exclusive prefix bounds of each segment's pair run (size ``n+1``).
    segment_bounds: np.ndarray
    #: Payload-row offset of each segment in the stacked row payload.
    row_offsets: np.ndarray
    #: Payload-row offset of each segment in the stacked column payload.
    col_offsets: np.ndarray
    #: The member plans, in segment order.
    plans: tuple

    @property
    def num_segments(self) -> int:
        return len(self.plans)

    @property
    def num_pairs(self) -> int:
        """Total matched pairs (= AND operations of the fused sweep)."""
        return int(self.row_positions.size)

    @property
    def nbytes(self) -> int:
        return (
            self.row_positions.nbytes
            + self.col_positions.nbytes
            + self.segment_bounds.nbytes
            + self.row_offsets.nbytes
            + self.col_offsets.nbytes
        )

    def segment_slice(self, index: int) -> slice:
        """The fused pair-space slice owned by segment ``index``."""
        return slice(
            int(self.segment_bounds[index]), int(self.segment_bounds[index + 1])
        )

    def split(self, per_pair: np.ndarray) -> list[np.ndarray]:
        """Split a fused per-pair array back into per-segment views.

        The inverse of the concatenation: ``split(pops)[i]`` is exactly
        what a lone sweep of ``plans[i]`` would have produced, so each
        segment's reduction (scalar accumulator, per-edge runs) proceeds
        as if it had never been fused.
        """
        per_pair = np.asarray(per_pair)
        if per_pair.shape[0] != self.num_pairs:
            raise ArchitectureError(
                f"fused split expects {self.num_pairs} per-pair values, "
                f"got {per_pair.shape[0]}"
            )
        return [per_pair[self.segment_slice(i)] for i in range(self.num_segments)]


def fuse_plans(plans, store=None) -> FusedPlan:
    """Concatenate compiled plans into one fused pair space.

    Each member's positions are shifted by the cumulative valid-slice
    counts of the preceding members — the offsets a physical
    ``np.concatenate`` of the payload arrays induces — so one sweep over
    the stacked payloads executes every member plan at once.  Callers
    group only lane-compatible plans (same slice width); this function
    is pure index arithmetic and does not see the payloads.  A ``store``
    routes the fused gather arrays through a backing store (disk-backed
    when large); per-sweep fused plans are usually left on heap.
    """
    plans = tuple(plans)
    if not plans:
        raise ArchitectureError("fuse_plans needs at least one plan")
    num = len(plans)
    row_offsets = np.zeros(num, dtype=np.int64)
    col_offsets = np.zeros(num, dtype=np.int64)
    np.cumsum([p.row_valid_slices for p in plans[:-1]], out=row_offsets[1:])
    np.cumsum([p.col_valid_slices for p in plans[:-1]], out=col_offsets[1:])
    segment_bounds = np.zeros(num + 1, dtype=np.int64)
    np.cumsum([p.num_pairs for p in plans], out=segment_bounds[1:])
    total = int(segment_bounds[-1])
    row_positions = _alloc(store, total, np.int64)
    col_positions = _alloc(store, total, np.int64)
    for i, plan in enumerate(plans):
        lo, hi = int(segment_bounds[i]), int(segment_bounds[i + 1])
        np.add(
            plan.row_positions, row_offsets[i], out=row_positions[lo:hi],
            casting="unsafe",
        )
        np.add(
            plan.col_positions, col_offsets[i], out=col_positions[lo:hi],
            casting="unsafe",
        )
    return FusedPlan(
        row_positions=row_positions,
        col_positions=col_positions,
        segment_bounds=segment_bounds,
        row_offsets=row_offsets,
        col_offsets=col_offsets,
        plans=plans,
    )


# ----------------------------------------------------------------------
# Incremental maintenance
# ----------------------------------------------------------------------
def oriented_structure_bits(
    delta_edges: np.ndarray, orientation: str, structure: str
) -> tuple[np.ndarray, np.ndarray]:
    """The (rows, cols) bit coordinates a delta batch touches in one
    oriented structure.

    ``structure`` is ``"row"`` (the successor structure) or ``"col"``
    (the predecessor structure, i.e. the transpose's rows).  For the
    ``"upper"`` orientation an edge ``u < v`` is bit ``(u, v)`` of the
    row structure and bit ``(v, u)`` of the column structure; for
    ``"symmetric"`` both structures hold both directions.
    """
    if structure not in ("row", "col"):
        raise ArchitectureError(f"structure must be 'row' or 'col', got {structure!r}")
    u, v = delta_edges[:, 0], delta_edges[:, 1]
    if orientation == "upper":
        return (u, v) if structure == "row" else (v, u)
    if orientation == "symmetric":
        return np.concatenate([u, v]), np.concatenate([v, u])
    raise ArchitectureError(
        f"orientation must be 'upper' or 'symmetric', got {orientation!r}"
    )


def merge_oriented_edges(
    sources: np.ndarray,
    destinations: np.ndarray,
    delta_edges: np.ndarray,
    orientation: str,
    num_vertices: int,
    insert: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Splice a canonical delta batch into a sorted oriented edge list.

    ``insert=True`` merges the delta edges in (they must be absent);
    ``insert=False`` removes them (they must be present) — the session
    filters no-ops before calling, exactly as for the slice maintenance.
    Preserves the legacy iteration order (lexicographic by source, then
    destination) for both orientations.
    """
    u, v = delta_edges[:, 0], delta_edges[:, 1]
    if orientation == "upper":
        delta_src, delta_dst = u, v
    elif orientation == "symmetric":
        delta_src = np.concatenate([u, v])
        delta_dst = np.concatenate([v, u])
    else:
        raise ArchitectureError(
            f"orientation must be 'upper' or 'symmetric', got {orientation!r}"
        )
    scale = np.int64(max(num_vertices, 1))
    delta_keys = delta_src * scale + delta_dst
    order = np.argsort(delta_keys, kind="stable")
    delta_keys = delta_keys[order]
    delta_src, delta_dst = delta_src[order], delta_dst[order]
    old_keys = sources * scale + destinations
    where = np.searchsorted(old_keys, delta_keys)
    if insert:
        if old_keys.size:
            clamped = np.minimum(where, old_keys.size - 1)
            if bool((old_keys[clamped] == delta_keys).any()):
                raise ArchitectureError(
                    "delta batch overlaps the resident edge list; filter "
                    "no-op insertions before splicing"
                )
        return (
            np.insert(sources, where, delta_src),
            np.insert(destinations, where, delta_dst),
        )
    if old_keys.size == 0 or bool(
        (old_keys[np.minimum(where, old_keys.size - 1)] != delta_keys).any()
    ):
        raise ArchitectureError(
            "delta batch names edges missing from the resident edge list; "
            "filter no-op deletions before splicing"
        )
    return np.delete(sources, where), np.delete(destinations, where)


def _shift_positions(positions: np.ndarray, delta: StructureDelta) -> np.ndarray:
    """Renumber surviving slice positions across one structural mutation."""
    if delta.inserted_before.size and delta.removed_at.size:
        raise ArchitectureError(
            "a single StructureDelta cannot both insert and remove slices"
        )
    if delta.inserted_before.size:
        return positions + np.searchsorted(
            delta.inserted_before, positions, side="right"
        )
    if delta.removed_at.size:
        return positions - np.searchsorted(delta.removed_at, positions)
    return positions


def _membership(sorted_keys: np.ndarray, probes: np.ndarray) -> np.ndarray:
    """Boolean membership of ``probes`` in a sorted key array."""
    if sorted_keys.size == 0:
        return np.zeros(probes.size, dtype=bool)
    where = np.searchsorted(sorted_keys, probes)
    clamped = np.minimum(where, sorted_keys.size - 1)
    return sorted_keys[clamped] == probes


def patch_join_plan(
    plan: JoinPlan,
    row_sliced: SlicedMatrix,
    col_sliced: SlicedMatrix,
    old_sources: np.ndarray,
    old_destinations: np.ndarray,
    new_sources: np.ndarray,
    new_destinations: np.ndarray,
    row_delta: StructureDelta,
    col_delta: StructureDelta,
    batch_candidates: int = engine.DEFAULT_BATCH_CANDIDATES,
    *,
    store=None,
) -> JoinPlan:
    """Splice one committed update batch into a compiled plan.

    ``plan`` was compiled for ``(old_sources, old_destinations)`` against
    the structures *before* the batch; ``row_sliced``/``col_sliced`` are
    the structures *after* the in-place slice maintenance, whose
    structural changes are described by ``row_delta``/``col_delta``
    (exactly what :func:`repro.core.incremental.set_bits`/``clear_bits``
    return).  Only the affected edges — those added or removed, plus any
    existing edge whose source row or destination column gained/lost a
    valid slice — are re-joined; every other pair survives with a
    vectorised position renumbering.  Returns a **new** plan (the input
    is never mutated), array-equal to ``build_join_plan`` on the new
    edge list against the new structures.
    """
    num_rows = row_sliced.num_rows
    scale = np.int64(max(num_rows, 1))
    old_keys = old_sources * scale + old_destinations
    new_keys = new_sources * scale + new_destinations
    affected_row = np.zeros(num_rows, dtype=bool)
    affected_row[row_delta.inserted_rows] = True
    affected_row[row_delta.removed_rows] = True
    affected_col = np.zeros(col_sliced.num_rows, dtype=bool)
    affected_col[col_delta.inserted_rows] = True
    affected_col[col_delta.removed_rows] = True
    keep_old = (
        _membership(new_keys, old_keys)
        & ~affected_row[old_sources]
        & ~affected_col[old_destinations]
    )
    redo_new = (
        ~_membership(old_keys, new_keys)
        | affected_row[new_sources]
        | affected_col[new_destinations]
    )
    keep_new = ~redo_new
    if int(keep_old.sum()) != int(keep_new.sum()):
        raise ArchitectureError(
            "plan patch lost alignment between the old and new edge lists; "
            "this is a bug — rebuild the plan"
        )
    # --- surviving pairs: gather, then renumber shifted positions ------
    keep_idx = np.flatnonzero(keep_old)
    kept_counts = plan.pair_counts[keep_idx]
    kept_take = _expand_runs(plan.bounds[keep_idx], kept_counts)
    kept_row = _shift_positions(plan.row_positions[kept_take], row_delta)
    kept_col = _shift_positions(plan.col_positions[kept_take], col_delta)
    # Global keys of surviving column slices are invariant (owner row and
    # slice id never change), so the kept trace is a pure gather.
    kept_trace = plan.trace_keys[kept_take]
    # --- affected edges: delta re-join against the updated structures --
    redo_idx = np.flatnonzero(redo_new)
    redo_row_parts: list[np.ndarray] = []
    redo_col_parts: list[np.ndarray] = []
    redo_edge_parts: list[np.ndarray] = []
    for row_hit, col_hit, edge_ids in engine.join_batches(
        row_sliced,
        col_sliced,
        new_sources[redo_idx],
        new_destinations[redo_idx],
        batch_candidates,
        with_edge_ids=True,
    ):
        redo_row_parts.append(row_hit)
        redo_col_parts.append(col_hit)
        redo_edge_parts.append(edge_ids)
    if redo_row_parts:
        redo_row = np.concatenate(redo_row_parts)
        redo_col = np.concatenate(redo_col_parts)
        redo_counts = np.bincount(
            np.concatenate(redo_edge_parts), minlength=redo_idx.size
        )
        redo_trace = col_sliced.global_keys()[redo_col]
    else:
        redo_row = np.empty(0, dtype=np.int64)
        redo_col = np.empty(0, dtype=np.int64)
        redo_counts = np.zeros(redo_idx.size, dtype=np.int64)
        redo_trace = np.empty(0, dtype=np.int64)
    # --- splice ---------------------------------------------------------
    num_edges = int(new_sources.size)
    pair_counts = np.zeros(num_edges, dtype=np.int64)
    pair_counts[keep_new] = kept_counts
    pair_counts[redo_idx] = redo_counts
    bounds = np.zeros(num_edges + 1, dtype=np.int64)
    np.cumsum(pair_counts, out=bounds[1:])
    total = int(bounds[-1])
    row_dtype = _position_dtype(max(row_sliced.num_valid_slices, 1) - 1)
    col_dtype = _position_dtype(max(col_sliced.num_valid_slices, 1) - 1)
    trace_dtype = _position_dtype(col_sliced.num_rows * col_sliced.slices_per_row)
    row_positions = _alloc(store, total, row_dtype)
    col_positions = _alloc(store, total, col_dtype)
    trace_keys = _alloc(store, total, trace_dtype)
    kept_targets = _expand_runs(bounds[np.flatnonzero(keep_new)], kept_counts)
    row_positions[kept_targets] = kept_row
    col_positions[kept_targets] = kept_col
    trace_keys[kept_targets] = kept_trace
    redo_targets = _expand_runs(bounds[redo_idx], redo_counts)
    row_positions[redo_targets] = redo_row
    col_positions[redo_targets] = redo_col
    trace_keys[redo_targets] = redo_trace
    patched = JoinPlan(
        row_positions=row_positions,
        col_positions=col_positions,
        trace_keys=trace_keys,
        pair_counts=pair_counts,
        num_edges=num_edges,
        row_version=row_sliced.structure_version,
        col_version=col_sliced.structure_version,
        row_valid_slices=row_sliced.num_valid_slices,
        col_valid_slices=col_sliced.num_valid_slices,
    )
    patched._bounds = bounds
    return patched
