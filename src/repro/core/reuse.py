"""Data reuse and exchange (paper Section IV-A).

The computational STT-MRAM array has fixed capacity (16 MB in the paper's
evaluation).  Row slices are loaded once per row and overwritten by the
next row; column slices are cached and replaced with an LRU policy when
the array fills up.  Every column-slice access falls in one of three
classes, which Fig. 5 reports per graph:

* **hit** — the slice is already resident: no WRITE needed;
* **miss** — first touch with free space: one WRITE;
* **exchange** — first touch with the array full: evict the least
  recently used slice, then WRITE.

The paper observes an average 72 % hit rate, i.e. the reuse strategy
eliminates 72 % of the memory WRITE operations.

Besides LRU this module implements FIFO and RANDOM replacement, plus the
offline-optimal Belady policy (the paper notes "more optimized replacement
strategy could be possible" — the ablation benchmark quantifies the gap).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.errors import CacheError

__all__ = [
    "AccessOutcome",
    "ReplacementPolicy",
    "CacheStatistics",
    "SliceCache",
    "simulate_trace",
    "simulate_key_trace",
    "belady_trace_statistics",
]


class AccessOutcome(str, Enum):
    """Classification of one cache access (the Fig. 5 categories)."""

    HIT = "hit"
    MISS = "miss"
    EXCHANGE = "exchange"


class ReplacementPolicy(str, Enum):
    """Supported replacement policies."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"


@dataclass
class CacheStatistics:
    """Counters of hit / miss / exchange events."""

    hits: int = 0
    misses: int = 0
    exchanges: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self.hits + self.misses + self.exchanges

    @property
    def writes(self) -> int:
        """WRITE operations issued (every non-hit loads a slice)."""
        return self.misses + self.exchanges

    @property
    def hit_percent(self) -> float:
        """Data-hit percentage (Fig. 5)."""
        return 100.0 * self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_percent(self) -> float:
        """Cold-miss percentage (Fig. 5)."""
        return 100.0 * self.misses / self.accesses if self.accesses else 0.0

    @property
    def exchange_percent(self) -> float:
        """Exchange (capacity-miss) percentage (Fig. 5)."""
        return 100.0 * self.exchanges / self.accesses if self.accesses else 0.0

    @property
    def write_savings_percent(self) -> float:
        """WRITEs avoided versus a cache-less design (= hit rate).

        Without reuse every access would write its slice; with reuse only
        misses and exchanges do, so the saving equals the hit percentage —
        the paper's "saves on average 72 % memory WRITE operations".
        """
        return self.hit_percent

    def merge(self, other: "CacheStatistics") -> "CacheStatistics":
        """Element-wise sum (useful for aggregating across graphs)."""
        return CacheStatistics(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            exchanges=self.exchanges + other.exchanges,
        )


class SliceCache:
    """Fixed-capacity cache of slice keys with pluggable replacement.

    Keys are arbitrary hashables; the TCIM accelerator uses
    ``(column, slice_index)`` tuples.  The cache only tracks residency —
    slice payloads live in the functional array model.

    Parameters
    ----------
    capacity:
        Maximum number of resident slices (> 0).
    policy:
        ``"lru"`` (paper default), ``"fifo"`` or ``"random"``.
    seed:
        RNG seed for the RANDOM policy.
    """

    def __init__(
        self,
        capacity: int,
        policy: ReplacementPolicy | str = ReplacementPolicy.LRU,
        seed: int = 0,
    ) -> None:
        if capacity <= 0:
            raise CacheError(f"cache capacity must be positive, got {capacity}")
        try:
            self._policy = ReplacementPolicy(policy)
        except ValueError:
            raise CacheError(f"unknown replacement policy {policy!r}") from None
        self._capacity = int(capacity)
        self._entries: OrderedDict[Hashable, None] = OrderedDict()
        self._rng = np.random.default_rng(seed)
        # RANDOM policy keeps an O(1)-evictable side structure: a dense key
        # list plus each key's position, so a random victim is a swap-remove.
        self._random_keys: list[Hashable] = []
        self._random_position: dict[Hashable, int] = {}
        self.stats = CacheStatistics()

    @property
    def capacity(self) -> int:
        """Maximum number of resident slices."""
        return self._capacity

    @property
    def policy(self) -> ReplacementPolicy:
        """Active replacement policy."""
        return self._policy

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def access(self, key: Hashable) -> AccessOutcome:
        """Touch ``key``: classify, update recency, insert/evict as needed.

        Returns the :class:`AccessOutcome` and updates :attr:`stats`.
        """
        if key in self._entries:
            if self._policy is ReplacementPolicy.LRU:
                self._entries.move_to_end(key)
            self.stats.hits += 1
            return AccessOutcome.HIT
        if len(self._entries) >= self._capacity:
            self._evict_one()
            self._insert(key)
            self.stats.exchanges += 1
            return AccessOutcome.EXCHANGE
        self._insert(key)
        self.stats.misses += 1
        return AccessOutcome.MISS

    def _insert(self, key: Hashable) -> None:
        self._entries[key] = None
        if self._policy is ReplacementPolicy.RANDOM:
            self._random_position[key] = len(self._random_keys)
            self._random_keys.append(key)

    def _remove_from_random_structures(self, key: Hashable) -> None:
        position = self._random_position.pop(key)
        last = self._random_keys.pop()
        if last is not key:
            self._random_keys[position] = last
            self._random_position[last] = position

    def _evict_one(self) -> Hashable:
        if self._policy is ReplacementPolicy.RANDOM:
            victim = self._random_keys[int(self._rng.integers(0, len(self._random_keys)))]
            self._remove_from_random_structures(victim)
            del self._entries[victim]
            return victim
        # LRU and FIFO both evict the head of the ordered dict; LRU refreshes
        # order on hit while FIFO does not.
        victim, _ = self._entries.popitem(last=False)
        return victim

    def resident_keys(self) -> list[Hashable]:
        """Snapshot of resident keys, eviction order first."""
        return list(self._entries)

    def invalidate(self, keys: Iterable[Hashable]) -> int:
        """Drop specific keys (used when a row region grows); returns count."""
        dropped = 0
        for key in keys:
            if key in self._entries:
                del self._entries[key]
                if self._policy is ReplacementPolicy.RANDOM:
                    self._remove_from_random_structures(key)
                dropped += 1
        return dropped

    def reset(self) -> None:
        """Empty the cache and zero the statistics."""
        self._entries.clear()
        self._random_keys.clear()
        self._random_position.clear()
        self.stats = CacheStatistics()


def simulate_trace(
    trace: Sequence[Hashable],
    capacity: int,
    policy: ReplacementPolicy | str = ReplacementPolicy.LRU,
    seed: int = 0,
) -> CacheStatistics:
    """Run a full access trace through a fresh :class:`SliceCache`."""
    cache = SliceCache(capacity, policy=policy, seed=seed)
    for key in trace:
        cache.access(key)
    return cache.stats


def simulate_key_trace(
    keys: np.ndarray,
    capacity: int,
    policy: ReplacementPolicy | str = ReplacementPolicy.LRU,
    seed: int = 0,
) -> CacheStatistics:
    """Simulate a full integer-key access trace — the vectorized fast path.

    Semantically identical to feeding every key of ``keys`` through
    :meth:`SliceCache.access` in order (same hit / miss / exchange
    classification, same RNG consumption for the RANDOM policy), but the
    eviction-free prefix of the trace — on the paper's 16 MB array that is
    usually the *whole* trace — is classified with vectorized numpy
    instead of one dict operation per access:

    * while the cache has never evicted, a key is a **hit** iff it occurred
      earlier in the trace, so hits/misses fall out of a first-occurrence
      scan;
    * the first access that would evict is located exactly (the first
      first-occurrence once ``capacity`` distinct keys are resident), the
      resident set and its recency/insertion order are reconstructed in
      bulk, and only the suffix runs through the serial cache.

    ``keys`` is a 1-D integer array; the TCIM batch engine encodes each
    column-slice access as ``column * slices_per_row + slice_id``.
    """
    if capacity <= 0:
        raise CacheError(f"cache capacity must be positive, got {capacity}")
    try:
        policy = ReplacementPolicy(policy)
    except ValueError:
        raise CacheError(f"unknown replacement policy {policy!r}") from None
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise CacheError(f"key trace must be 1-D, got shape {keys.shape}")
    length = int(keys.size)
    if length == 0:
        return CacheStatistics()
    # Cheap distinct count first (one sort, no inverse): when the working
    # set fits — the common case on the paper's 16 MB array — nothing ever
    # evicts, every policy coincides, and hits are just re-accesses.
    sorted_keys = np.sort(keys)
    distinct = 1 + int(np.count_nonzero(sorted_keys[1:] != sorted_keys[:-1]))
    if distinct <= capacity:
        return CacheStatistics(hits=length - distinct, misses=distinct)
    # ``first_position[i]`` is the first occurrence of compact key id i.
    unique, first_position, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    # Occupancy only grows until the first eviction, one slot per first
    # occurrence, so the first access that evicts is the first occurrence
    # number ``capacity`` (0-based): everything before it is eviction-free.
    boundary = int(np.sort(first_position)[capacity])
    prefix_misses = capacity
    stats = CacheStatistics(hits=boundary - prefix_misses, misses=prefix_misses)
    prefix_inverse = inverse[:boundary]
    if policy is ReplacementPolicy.LRU:
        # Eviction order = recency order: oldest last access first.
        last_access = np.full(unique.size, -1, dtype=np.int64)
        np.maximum.at(last_access, prefix_inverse, np.arange(boundary, dtype=np.int64))
        resident = np.flatnonzero(last_access >= 0)
        resident = resident[np.argsort(last_access[resident], kind="stable")]
    else:
        # FIFO evicts in insertion order; RANDOM tracks insertion order in
        # its side list.  Both reduce to first-occurrence order here.
        resident = np.flatnonzero(first_position < boundary)
        resident = resident[np.argsort(first_position[resident], kind="stable")]
    cache = SliceCache(capacity, policy=policy, seed=seed)
    for key in unique[resident].tolist():
        cache._insert(key)
    cache.stats = stats
    access = cache.access
    for key in keys[boundary:].tolist():
        access(key)
    return cache.stats


def belady_trace_statistics(trace: Sequence[Hashable], capacity: int) -> CacheStatistics:
    """Offline-optimal (Belady / MIN) replacement statistics for a trace.

    Evicts the resident key whose next use is farthest in the future.
    Serves as the upper bound on any online policy in the replacement
    ablation (the paper hints better-than-LRU policies are possible).

    Runs in O(len(trace) log len(trace)) using a lazy-deletion max-heap of
    next-use positions, so million-access traces stay cheap.
    """
    if capacity <= 0:
        raise CacheError(f"cache capacity must be positive, got {capacity}")
    import heapq

    # Precompute, for each position, the next position where the same key
    # recurs (or infinity).
    never = np.iinfo(np.int64).max
    next_use_of: dict[Hashable, int] = {}
    next_use = np.full(len(trace), never, dtype=np.int64)
    for position in range(len(trace) - 1, -1, -1):
        key = trace[position]
        if key in next_use_of:
            next_use[position] = next_use_of[key]
        next_use_of[key] = position
    stats = CacheStatistics()
    resident: dict[Hashable, int] = {}  # key -> its current next-use position
    # Max-heap (negated) of (next_use, key); stale entries are skipped on pop.
    heap: list[tuple[int, int, Hashable]] = []
    for position, key in enumerate(trace):
        key_next = int(next_use[position])
        if key in resident:
            stats.hits += 1
            resident[key] = key_next
            heapq.heappush(heap, (-key_next, position, key))
            continue
        if len(resident) >= capacity:
            while True:
                negated, _, victim = heapq.heappop(heap)
                if victim in resident and resident[victim] == -negated:
                    break
            del resident[victim]
            stats.exchanges += 1
        else:
            stats.misses += 1
        resident[key] = key_next
        heapq.heappush(heap, (-key_next, position, key))
    return stats
