"""TCIM core: the paper's contribution (bitwise TC, slicing, reuse, Algorithm 1)."""

from repro.core.accelerator import (
    AcceleratorConfig,
    EventCounts,
    TCIMAccelerator,
    TCIMRunResult,
)
from repro.core.bitwise import (
    BitwiseCounts,
    triangle_count_bitwise,
    triangle_count_dense,
    triangle_count_sliced,
    triangles_per_vertex_sliced,
)
from repro.core.reuse import (
    AccessOutcome,
    CacheStatistics,
    ReplacementPolicy,
    SliceCache,
    belady_trace_statistics,
    simulate_trace,
)
from repro.core.dynamic import DynamicTriangleCounter
from repro.core.incremental import (
    DeltaOutcome,
    StructureDelta,
    canonical_delta_edges,
    symmetric_delta,
)
from repro.core.plan import JoinPlan, build_join_plan, patch_join_plan
from repro.core.sharding import (
    PARTITIONERS,
    POSITION_PARTITIONERS,
    ContextPool,
    ShardContext,
    ShardLane,
    ShardPlan,
    ShardResult,
    assign_colors,
    build_shard_contexts,
    color_triples,
    context_balance,
    execute_contexts,
    execute_sharded,
    min_colors,
    num_color_shards,
    plan_shards,
)
from repro.core.slicing import SlicedMatrix, SliceStatistics, slice_statistics
from repro.core.trace import AccessTrace, compare_policies, extract_column_trace

__all__ = [
    "DeltaOutcome",
    "DynamicTriangleCounter",
    "JoinPlan",
    "StructureDelta",
    "build_join_plan",
    "canonical_delta_edges",
    "patch_join_plan",
    "symmetric_delta",
    "PARTITIONERS",
    "POSITION_PARTITIONERS",
    "ContextPool",
    "ShardContext",
    "ShardLane",
    "ShardPlan",
    "ShardResult",
    "assign_colors",
    "build_shard_contexts",
    "color_triples",
    "context_balance",
    "execute_contexts",
    "execute_sharded",
    "min_colors",
    "num_color_shards",
    "plan_shards",
    "AccessTrace",
    "compare_policies",
    "extract_column_trace",
    "AcceleratorConfig",
    "EventCounts",
    "TCIMAccelerator",
    "TCIMRunResult",
    "BitwiseCounts",
    "triangle_count_bitwise",
    "triangle_count_dense",
    "triangle_count_sliced",
    "triangles_per_vertex_sliced",
    "AccessOutcome",
    "CacheStatistics",
    "ReplacementPolicy",
    "SliceCache",
    "belady_trace_statistics",
    "simulate_trace",
    "SlicedMatrix",
    "SliceStatistics",
    "slice_statistics",
]
