"""The bitwise triangle-counting method of paper Section III.

The key identity (Eq. 5):

    TC(G) = sum over A[i][j] = 1 of BitCount(AND(A[i][*], A[*][j]^T))

i.e. for every non-zero of the adjacency matrix, AND the i-th row with the
j-th column and accumulate the population count.  With the full symmetric
matrix the sum counts every triangle six times (each triangle appears once
per ordered edge); with the upper-triangular DAG orientation — the one used
in the paper's Fig. 2 walk-through — every triangle ``a < b < c`` is found
exactly once, at edge ``(a, c)`` with intermediate ``b``.

Two functional implementations are provided:

* :func:`triangle_count_dense` operates on packed
  :class:`~repro.graph.bitmatrix.BitMatrix` rows (memory O(n^2 / 8),
  intended for graphs up to a few tens of thousands of vertices);
* :func:`triangle_count_sliced` operates on the valid-slice compression of
  Section IV-B (memory O(nnz)), and is the software twin of what the
  in-memory accelerator executes.

Both return exact triangle counts and agree with the classical baselines
(:mod:`repro.baselines`) on every graph — enforced by the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.graph import bitops
from repro.graph.bitmatrix import BitMatrix
from repro.graph.graph import Graph
from repro.core.slicing import SlicedMatrix, valid_pair_positions

__all__ = [
    "BitwiseCounts",
    "triangle_count_dense",
    "triangle_count_sliced",
    "triangle_count_bitwise",
    "DENSE_VERTEX_LIMIT",
]

#: Refuse to build an O(n^2) dense bit matrix beyond this size unless forced.
DENSE_VERTEX_LIMIT = 40_000


@dataclass
class BitwiseCounts:
    """Operation counters filled in by the functional kernels.

    These are *algorithmic* counts (how many AND-slice/word operations the
    method performs); the architecture simulator prices them in time and
    energy.
    """

    triangles: int = 0
    edges_processed: int = 0
    #: Slice pairs actually ANDed (valid pairs only, for the sliced kernel).
    and_operations: int = 0
    #: 64-bit word operations underlying the ANDs.
    word_operations: int = 0
    #: Slice pairs a dense (un-sliced) sweep would have processed.
    dense_pair_operations: int = 0
    #: BitCount invocations (one per AND, per the paper's dataflow).
    bitcount_operations: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def computation_reduction_percent(self) -> float:
        """Fraction of dense slice-pair work eliminated by slicing."""
        if not self.dense_pair_operations:
            return 0.0
        saved = 1.0 - self.and_operations / self.dense_pair_operations
        return 100.0 * saved


def triangle_count_dense(
    graph: Graph,
    orientation: str = "upper",
    counts: BitwiseCounts | None = None,
    force: bool = False,
) -> int:
    """Count triangles with dense packed rows/columns (Eq. 5).

    Parameters
    ----------
    orientation:
        ``"upper"`` (each triangle counted once) or ``"symmetric"``
        (counted six times, then divided — the literal Eq. 1 reading).
    counts:
        Optional :class:`BitwiseCounts` to fill with operation statistics.
    force:
        Allow graphs above :data:`DENSE_VERTEX_LIMIT` (quadratic memory!).
    """
    if orientation not in ("upper", "symmetric"):
        raise GraphError(f"orientation must be 'upper' or 'symmetric', got {orientation!r}")
    if graph.num_vertices > DENSE_VERTEX_LIMIT and not force:
        raise GraphError(
            f"dense kernel refused for n={graph.num_vertices} > "
            f"{DENSE_VERTEX_LIMIT}; use triangle_count_sliced or force=True"
        )
    matrix = BitMatrix.from_graph(graph, orientation)
    transposed = matrix.transposed()
    total = 0
    word_ops = 0
    edges_processed = 0
    indptr, indices = graph.csr
    for row in range(graph.num_vertices):
        neighbours = indices[indptr[row]: indptr[row + 1]]
        if orientation == "upper":
            successors = neighbours[neighbours > row]
        else:
            successors = neighbours
        if successors.size == 0:
            continue
        # Data reuse (Section IV-A): one row is shared by all its non-zeros,
        # so broadcast it against the block of needed columns.
        conj = transposed.data[successors] & matrix.row(row)[np.newaxis, :]
        total += bitops.popcount(conj)
        word_ops += conj.size
        edges_processed += int(successors.size)
    triangles = total if orientation == "upper" else total // 6
    if counts is not None:
        counts.triangles = triangles
        counts.edges_processed = edges_processed
        counts.word_operations = word_ops
        counts.and_operations = edges_processed * matrix.words_per_row
        counts.dense_pair_operations = edges_processed * matrix.words_per_row
        counts.bitcount_operations = edges_processed
    return triangles


def triangle_count_sliced(
    graph: Graph,
    slice_bits: int = 64,
    orientation: str = "upper",
    counts: BitwiseCounts | None = None,
    row_sliced: SlicedMatrix | None = None,
    col_sliced: SlicedMatrix | None = None,
) -> int:
    """Count triangles on the valid-slice compressed form (Sections III+IV-B).

    This is the exact computation the TCIM accelerator performs: for every
    edge, only slice positions where both the row and the column slice are
    valid get ANDed and popcounted.  Memory is proportional to the number
    of non-zeros, so this kernel handles every benchmark graph.

    Pre-built :class:`SlicedMatrix` operands may be passed to amortise the
    compression across calls (the accelerator and benchmarks do this).
    """
    if orientation not in ("upper", "symmetric"):
        raise GraphError(f"orientation must be 'upper' or 'symmetric', got {orientation!r}")
    if row_sliced is None:
        row_sliced = SlicedMatrix.from_graph(graph, orientation, slice_bits=slice_bits)
    if col_sliced is None:
        col_orientation = "lower" if orientation == "upper" else "symmetric"
        col_sliced = SlicedMatrix.from_graph(
            graph, col_orientation, slice_bits=slice_bits
        )
    total = 0
    and_ops = 0
    word_ops = 0
    edges_processed = 0
    dense_pairs = 0
    words_per_slice = slice_bits // 64 if slice_bits >= 64 else 1
    slices_per_row = row_sliced.slices_per_row
    indptr, indices = graph.csr
    for row in range(graph.num_vertices):
        neighbours = indices[indptr[row]: indptr[row + 1]]
        if orientation == "upper":
            successors = neighbours[neighbours > row]
        else:
            successors = neighbours
        if successors.size == 0:
            continue
        row_ids, row_data = row_sliced.row_slices(row)
        edges_processed += int(successors.size)
        dense_pairs += int(successors.size) * slices_per_row
        if row_ids.size == 0:
            continue
        for column in successors.tolist():
            col_ids, col_data = col_sliced.row_slices(column)
            if col_ids.size == 0:
                continue
            row_pos, col_pos = valid_pair_positions(row_ids, col_ids)
            if row_pos.size == 0:
                continue
            total += bitops.conjunction_popcount(
                row_data[row_pos], col_data[col_pos]
            )
            and_ops += int(row_pos.size)
            word_ops += int(row_pos.size) * words_per_slice
    triangles = total if orientation == "upper" else total // 6
    if counts is not None:
        counts.triangles = triangles
        counts.edges_processed = edges_processed
        counts.and_operations = and_ops
        counts.word_operations = word_ops
        counts.dense_pair_operations = dense_pairs
        counts.bitcount_operations = and_ops
    return triangles


def triangle_count_bitwise(graph: Graph, slice_bits: int = 64) -> int:
    """Convenience front-end: pick the dense kernel for small graphs and
    the sliced kernel otherwise."""
    if graph.num_vertices <= 4096:
        return triangle_count_dense(graph)
    return triangle_count_sliced(graph, slice_bits=slice_bits)


def triangles_per_vertex_sliced(
    graph: Graph, slice_bits: int = 64
) -> "np.ndarray":
    """Per-vertex triangle counts through the sliced bitwise kernel.

    The AND result of Eq. (5) carries more than its popcount: bit ``t`` of
    ``AND(R_i S_k, C_j S_k)`` identifies the *intermediate* vertex
    ``w = k |S| + t`` of a triangle ``i < w < j``.  Reading those bits out
    (a READ the architecture already supports) attributes each triangle to
    all three of its corners, which is what clustering-coefficient
    pipelines need.  Sums to three times the triangle count; validated
    against the intersection-based counter in the tests.
    """
    row_sliced = SlicedMatrix.from_graph(graph, "upper", slice_bits=slice_bits)
    col_sliced = SlicedMatrix.from_graph(graph, "lower", slice_bits=slice_bits)
    counts = np.zeros(graph.num_vertices, dtype=np.int64)
    indptr, indices = graph.csr
    for row in range(graph.num_vertices):
        neighbours = indices[indptr[row]: indptr[row + 1]]
        successors = neighbours[neighbours > row]
        if successors.size == 0:
            continue
        row_ids, row_data = row_sliced.row_slices(row)
        if row_ids.size == 0:
            continue
        for column in successors.tolist():
            col_ids, col_data = col_sliced.row_slices(column)
            if col_ids.size == 0:
                continue
            row_pos, col_pos = valid_pair_positions(row_ids, col_ids)
            if row_pos.size == 0:
                continue
            conj = row_data[row_pos] & col_data[col_pos]
            closed = bitops.popcount(conj)
            if not closed:
                continue
            counts[row] += closed
            counts[column] += closed
            for pair_index, slice_id in enumerate(row_ids[row_pos].tolist()):
                base = slice_id * slice_bits
                set_bits = np.flatnonzero(
                    np.unpackbits(conj[pair_index], bitorder="little")
                )
                counts[base + set_bits] += 1
    return counts
