"""Sharded multi-array execution (paper Fig. 4 bank organisation).

The TCIM chip is not one monolithic array: Fig. 4 organises it as banks of
mats of sub-arrays — 128 sub-arrays in the paper's configuration — each
with its own row buffer and local bit counter.  The analytic layer
(:mod:`repro.arch.pipeline`) has always *priced* that parallelism by
Amdahl-scaling a single-array run; this module makes the functional
simulator actually execute it:

1. a pluggable **partitioner** splits the oriented edge list across
   ``num_arrays`` simulated arrays (a :class:`ShardPlan`);
2. each shard runs the vectorized kernel
   (:func:`repro.core.engine.execute_batched`) over its own edge range,
   with a private row region sized to the rows it touches and a private
   column-slice cache covering its share of the array capacity;
3. per-shard results are merged: the triangle accumulator and the
   additive :class:`~repro.core.accelerator.EventCounts` sum exactly,
   cache statistics merge element-wise, and the per-shard breakdown is
   kept so the architecture model can price the *measured* critical path
   (slowest shard) instead of a uniform analytic scaling.

Partitioning strategy matters as much as unit count — real-PIM follow-up
work (Asquini et al.) shows per-bank load balance dominates multi-array
triangle-counting performance — so three partitioners are provided:

* ``"edges"`` — contiguous edge ranges, the cheapest split (a row's edges
  may straddle a boundary, costing duplicate row-slice loads);
* ``"rows"`` — row round-robin (``row % num_arrays``), keeping each row's
  edges on one array;
* ``"degree"`` — greedy longest-processing-time assignment of whole rows
  by successor count, balancing expected AND work across arrays.

Invariants (asserted by ``tests/test_sharding.py``): ``num_arrays=1``
reproduces the single-array vectorized engine bit for bit, and for any
``num_arrays`` the merged triangle count is exact while the additive
event counters (``edges_processed``, ``and_operations``,
``dense_pair_operations``, ...) conserve their single-array totals.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import execute_batched, oriented_edges
from repro.core.reuse import CacheStatistics
from repro.core.slicing import SlicedMatrix
from repro.errors import ArchitectureError
from repro.graph.graph import Graph

__all__ = [
    "PARTITIONERS",
    "ShardPlan",
    "ShardResult",
    "ShardedOutcome",
    "plan_shards",
    "execute_sharded",
]

#: Recognised values of ``AcceleratorConfig.shard_by``.
PARTITIONERS = ("edges", "rows", "degree")


@dataclass(frozen=True, eq=False)
class ShardPlan:
    """Assignment of every oriented-edge position to one simulated array.

    ``assignments[s]`` holds the positions (indices into the oriented
    edge arrays) owned by shard ``s``, ascending — so each shard walks its
    edges in the legacy iteration order and its private cache trace stays
    deterministic.  Shards may be empty (more arrays than edges).

    ``orientation`` records which oriented edge list the positions index
    into; :func:`execute_sharded` rejects a plan built for a different
    orientation or a different edge count (the position spaces differ, so
    reusing one silently selects the wrong edges).

    ``eq=False``: ndarray fields make the generated ``__eq__`` ambiguous,
    so plans compare (and hash) by identity.
    """

    num_arrays: int
    shard_by: str
    assignments: tuple[np.ndarray, ...]
    orientation: str = "upper"

    def __post_init__(self) -> None:
        if self.num_arrays < 1:
            raise ArchitectureError(
                f"num_arrays must be >= 1, got {self.num_arrays}"
            )
        if self.shard_by not in PARTITIONERS:
            raise ArchitectureError(
                f"shard_by must be one of {PARTITIONERS}, got {self.shard_by!r}"
            )
        if len(self.assignments) != self.num_arrays:
            raise ArchitectureError(
                f"plan has {len(self.assignments)} shards for "
                f"{self.num_arrays} arrays"
            )

    @property
    def num_edges(self) -> int:
        """Total edges across all shards."""
        return sum(int(positions.size) for positions in self.assignments)

    def edges_per_shard(self) -> list[int]:
        """Edge count of each shard (load-balance diagnostic)."""
        return [int(positions.size) for positions in self.assignments]


@dataclass
class ShardResult:
    """Outcome of one simulated array's run over its shard."""

    shard_id: int
    edges: int
    rows: int
    accumulator: int
    events: "EventCounts"  # noqa: F821 - imported lazily to avoid a cycle
    cache_stats: CacheStatistics
    row_region_slices: int
    column_cache_slices: int


@dataclass
class ShardedOutcome:
    """Merged result of a sharded execution plus the per-shard breakdown."""

    accumulator: int
    events: "EventCounts"  # noqa: F821
    cache_stats: CacheStatistics
    shards: list[ShardResult] = field(default_factory=list)


def _partition_edges(sources: np.ndarray, num_arrays: int) -> list[np.ndarray]:
    """Contiguous edge ranges of near-equal size."""
    return list(np.array_split(np.arange(sources.size, dtype=np.int64), num_arrays))

def _partition_rows(sources: np.ndarray, num_arrays: int) -> list[np.ndarray]:
    """Row round-robin: shard ``row % num_arrays`` owns all of a row's edges."""
    shard_of = sources % num_arrays
    positions = np.arange(sources.size, dtype=np.int64)
    return [positions[shard_of == s] for s in range(num_arrays)]

def _partition_degree(sources: np.ndarray, num_arrays: int) -> list[np.ndarray]:
    """Greedy LPT over whole rows, weighted by oriented out-degree.

    Rows are assigned heaviest-first to the currently lightest shard —
    the classic longest-processing-time heuristic, deterministic via
    stable sorting.  Out-degree (successor count) is proportional to the
    candidate slice-pair work a row generates, so this balances expected
    AND operations, not just edge counts.
    """
    if sources.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return [empty.copy() for _ in range(num_arrays)]
    import heapq

    rows, counts = np.unique(sources, return_counts=True)
    order = np.argsort(counts, kind="stable")[::-1]
    shard_of_row = np.empty(rows.size, dtype=np.int64)
    heap = [(0, s) for s in range(num_arrays)]
    for r in order.tolist():
        load, target = heapq.heappop(heap)
        shard_of_row[r] = target
        heapq.heappush(heap, (load + int(counts[r]), target))
    # Edge positions are sorted by row, so mapping each edge to its row's
    # shard and selecting per shard preserves ascending position order.
    row_index = np.searchsorted(rows, sources)
    shard_of = shard_of_row[row_index]
    positions = np.arange(sources.size, dtype=np.int64)
    return [positions[shard_of == s] for s in range(num_arrays)]


_PARTITIONER_FUNCS = {
    "edges": _partition_edges,
    "rows": _partition_rows,
    "degree": _partition_degree,
}


def plan_shards(
    graph: Graph | None,
    orientation: str,
    num_arrays: int,
    shard_by: str = "edges",
    sources: np.ndarray | None = None,
) -> ShardPlan:
    """Split the oriented edge list of ``graph`` across ``num_arrays``.

    ``sources`` optionally passes the already-materialised oriented
    source array (``oriented_edges(graph, orientation)[0]``) so callers
    that hold it anyway skip a second O(m) expansion — with it given,
    ``graph`` is never touched and may be ``None`` (the incremental
    engine plans shards over delta edge lists without a graph snapshot).
    """
    if num_arrays < 1:
        raise ArchitectureError(f"num_arrays must be >= 1, got {num_arrays}")
    if shard_by not in PARTITIONERS:
        raise ArchitectureError(
            f"shard_by must be one of {PARTITIONERS}, got {shard_by!r}"
        )
    if sources is None:
        if graph is None:
            raise ArchitectureError(
                "plan_shards needs a graph when sources is not provided"
            )
        sources, _ = oriented_edges(graph, orientation)
    assignments = _PARTITIONER_FUNCS[shard_by](sources, num_arrays)
    return ShardPlan(
        num_arrays=num_arrays,
        shard_by=shard_by,
        assignments=tuple(assignments),
        orientation=orientation,
    )


def _run_one_shard(
    shard_id: int,
    shard_sources: np.ndarray,
    shard_destinations: np.ndarray,
    shard_join_plan,
    graph: Graph,
    row_sliced: SlicedMatrix,
    col_sliced: SlicedMatrix,
    orientation: str,
    per_array_capacity: int,
    policy,
    seed: int,
    batch_candidates: int | None,
) -> ShardResult:
    """Execute one shard on its private simulated array.

    Top-level (not a closure) so :class:`ProcessPoolExecutor` can pickle
    it along with its arguments.  ``shard_join_plan`` optionally carries
    this shard's slice of a compiled :class:`repro.core.plan.JoinPlan`
    (see :meth:`JoinPlan.subset`); the kernel then skips the merge-join.
    """
    from repro.core.accelerator import EventCounts
    from repro.core.engine import DEFAULT_BATCH_CANDIDATES

    touched_rows = np.unique(shard_sources)
    _, touched_counts = row_sliced.row_slice_ranges(touched_rows)
    row_region = int(touched_counts.max(initial=0))
    column_capacity = per_array_capacity - row_region
    if column_capacity < 1:
        raise ArchitectureError(
            f"shard {shard_id}: per-array capacity {per_array_capacity} "
            f"slices cannot hold its row region ({row_region} slices) plus "
            f"a column cache; use fewer arrays or a larger array"
        )
    accumulator, fields, cache_stats = execute_batched(
        graph,
        row_sliced,
        col_sliced,
        orientation,
        column_capacity,
        policy=policy,
        seed=seed,
        batch_candidates=(
            batch_candidates if batch_candidates else DEFAULT_BATCH_CANDIDATES
        ),
        edges=(shard_sources, shard_destinations),
        row_writes=int(touched_counts.sum()),
        plan=shard_join_plan,
    )
    return ShardResult(
        shard_id=shard_id,
        edges=int(shard_sources.size),
        rows=int(touched_rows.size),
        accumulator=accumulator,
        events=EventCounts(**fields),
        cache_stats=cache_stats,
        row_region_slices=row_region,
        column_cache_slices=column_capacity,
    )


def execute_sharded(
    graph: Graph,
    row_sliced: SlicedMatrix,
    col_sliced: SlicedMatrix,
    orientation: str,
    plan: ShardPlan,
    capacity_slices: int,
    policy,
    seed: int,
    workers: int = 0,
    batch_candidates: int | None = None,
    edge_arrays: tuple[np.ndarray, np.ndarray] | None = None,
    join_plan=None,
) -> ShardedOutcome:
    """Fan the shards of ``plan`` out over simulated arrays and merge.

    ``capacity_slices`` is the *total* computational-array capacity; each
    of the ``plan.num_arrays`` arrays owns an equal share, mirroring the
    fixed 16 MB budget the paper splits across its 128 sub-arrays.  Each
    shard reserves its own row region (sized to the rows it touches) out
    of that share and runs a private column-cache trace.

    ``workers=0`` runs shards serially in-process; ``workers>0`` fans
    them out over a :class:`ProcessPoolExecutor` — results are identical
    because shards share no mutable state.  ``edge_arrays`` optionally
    passes the already-materialised ``(sources, destinations)`` pair.

    ``join_plan`` optionally passes the full edge list's compiled
    :class:`repro.core.plan.JoinPlan`; each shard then receives its
    :meth:`~repro.core.plan.JoinPlan.subset` and skips the per-query
    merge-join.  The plan must cover exactly the edges of ``plan`` (same
    oriented edge list) — a count mismatch raises rather than silently
    mis-joining.
    """
    from repro.core.accelerator import EventCounts

    if workers < 0:
        raise ArchitectureError(f"workers must be >= 0, got {workers}")
    if plan.orientation != orientation:
        raise ArchitectureError(
            f"plan was built for orientation {plan.orientation!r} but the "
            f"run uses {orientation!r}; shard positions index different "
            "edge lists — rebuild the plan with plan_shards"
        )
    per_array_capacity = capacity_slices // plan.num_arrays
    if per_array_capacity < 2:
        raise ArchitectureError(
            f"array of {capacity_slices} slices split {plan.num_arrays} ways "
            f"leaves {per_array_capacity} slices per array; need at least 2"
        )
    if edge_arrays is None:
        sources, destinations = oriented_edges(graph, orientation)
    else:
        sources, destinations = edge_arrays
    if plan.num_edges != int(sources.size):
        raise ArchitectureError(
            f"plan covers {plan.num_edges} edges but the oriented edge list "
            f"has {sources.size}; the plan was built for a different graph "
            "— rebuild it with plan_shards"
        )
    if join_plan is not None and join_plan.num_edges != int(sources.size):
        raise ArchitectureError(
            f"join plan covers {join_plan.num_edges} edges but the oriented "
            f"edge list has {sources.size}; compile a plan for this edge list"
        )
    shared = (
        graph,
        row_sliced,
        col_sliced,
        orientation,
        per_array_capacity,
        policy,
        seed,
        batch_candidates,
    )
    jobs = [
        (
            shard_id,
            sources[positions],
            destinations[positions],
            join_plan.subset(positions) if join_plan is not None else None,
        )
        for shard_id, positions in enumerate(plan.assignments)
    ]
    if workers > 0 and len(jobs) > 1:
        # The graph and both slice structures are identical for every
        # shard: ship them once per worker via the initializer instead of
        # pickling them into each job (O(n + m) per shard otherwise).
        max_workers = min(workers, len(jobs), os.cpu_count() or 1)
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_shard_worker,
            initargs=shared,
        ) as pool:
            shard_results = list(pool.map(_run_pooled_shard, jobs))
    else:
        shard_results = [_run_one_shard(*job, *shared) for job in jobs]
    accumulator = sum(result.accumulator for result in shard_results)
    events = EventCounts()
    cache_stats = CacheStatistics()
    for result in shard_results:
        events = events + result.events
        cache_stats = cache_stats.merge(result.cache_stats)
    return ShardedOutcome(
        accumulator=accumulator,
        events=events,
        cache_stats=cache_stats,
        shards=shard_results,
    )


#: Per-process shared state installed by :func:`_init_shard_worker`.
_WORKER_SHARED: tuple | None = None


def _init_shard_worker(*shared) -> None:
    """Pool initializer: stash the run-wide read-only state once."""
    global _WORKER_SHARED
    _WORKER_SHARED = shared


def _run_pooled_shard(job: tuple) -> ShardResult:
    """Run one ``(shard_id, sources, destinations)`` job in a pool worker."""
    return _run_one_shard(*job, *_WORKER_SHARED)
