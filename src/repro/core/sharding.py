"""Sharded multi-array execution (paper Fig. 4 bank organisation).

The TCIM chip is not one monolithic array: Fig. 4 organises it as banks of
mats of sub-arrays — 128 sub-arrays in the paper's configuration — each
with its own row buffer and local bit counter.  The analytic layer
(:mod:`repro.arch.pipeline`) has always *priced* that parallelism by
Amdahl-scaling a single-array run; this module makes the functional
simulator actually execute it:

1. a pluggable **partitioner** splits the oriented edge list across
   ``num_arrays`` simulated arrays (a :class:`ShardPlan`);
2. each shard runs the vectorized kernel
   (:func:`repro.core.engine.execute_batched`) over its own edge range,
   with a private row region sized to the rows it touches and a private
   column-slice cache covering its share of the array capacity;
3. per-shard results are merged: the triangle accumulator and the
   additive :class:`~repro.core.accelerator.EventCounts` sum exactly,
   cache statistics merge element-wise, and the per-shard breakdown is
   kept so the architecture model can price the *measured* critical path
   (slowest shard) instead of a uniform analytic scaling.

Partitioning strategy matters as much as unit count — real-PIM follow-up
work (Asquini et al.) shows per-bank load balance dominates multi-array
triangle-counting performance — so three partitioners are provided:

* ``"edges"`` — contiguous edge ranges, the cheapest split (a row's edges
  may straddle a boundary, costing duplicate row-slice loads);
* ``"rows"`` — row round-robin (``row % num_arrays``), keeping each row's
  edges on one array;
* ``"degree"`` — greedy longest-processing-time assignment of whole rows
  by successor count, balancing expected AND work across arrays.

The three partitioners above split *positions* of one shared oriented
edge list: every shard still reads the same global slice structures and
the orchestrator merges partial results afterwards.  The **coloring**
partitioner (PIM-TC; Asquini et al., "Accelerating Triangle Counting
with Real Processing-in-Memory Systems") instead makes each shard
*self-contained*: ``C`` vertex colors induce ``Binom(C+2, 3)`` shards,
one per color triple ``{x <= y <= z}``, and each shard owns its own
oriented edge arrays, its own locally built :class:`SlicedMatrix`
structures and its own compiled :class:`~repro.core.plan.JoinPlan` — a
:class:`ShardContext`.  Every triangle's vertex-color multiset names
exactly one shard, so the per-shard counts sum to the exact total with
**zero cross-shard slice traffic**: a process (or, later, a host) can
own a context outright and answer repeat queries without ever touching
shared state.  See :func:`build_shard_contexts` for the construction
and the lane decomposition that keeps monochromatic triples exact.

Invariants (asserted by ``tests/test_sharding.py`` and
``tests/test_coloring.py``): ``num_arrays=1`` reproduces the
single-array vectorized engine bit for bit; for any ``num_arrays`` the
merged triangle count is exact; position partitioners conserve the
additive event counters (``edges_processed``, ``and_operations``,
``dense_pair_operations``, ...) against their single-array totals,
while coloring replicates each edge into ``C`` contexts (the PIM-TC
trade: ``C×`` the edge volume buys zero communication) and conserves
the merged counters against the field-wise sum of its shards.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import execute_batched, oriented_edges
from repro.core.reuse import CacheStatistics
from repro.core.slicing import SlicedMatrix
from repro.errors import ArchitectureError
from repro.graph.graph import Graph

__all__ = [
    "PARTITIONERS",
    "POSITION_PARTITIONERS",
    "ContextPool",
    "ShardContext",
    "ShardLane",
    "ShardPlan",
    "ShardResult",
    "ShardedOutcome",
    "assign_colors",
    "build_shard_contexts",
    "color_triples",
    "context_balance",
    "execute_contexts",
    "execute_sharded",
    "min_colors",
    "num_color_shards",
    "plan_shards",
]

#: Partitioners that split positions of one shared oriented edge list
#: (the only values :func:`plan_shards` accepts).
POSITION_PARTITIONERS = ("edges", "rows", "degree")

#: Recognised values of ``AcceleratorConfig.shard_by``: the position
#: partitioners plus ``"coloring"``, which builds self-contained
#: :class:`ShardContext` shards instead of a :class:`ShardPlan`.
PARTITIONERS = POSITION_PARTITIONERS + ("coloring",)


@dataclass(frozen=True, eq=False)
class ShardPlan:
    """Assignment of every oriented-edge position to one simulated array.

    ``assignments[s]`` holds the positions (indices into the oriented
    edge arrays) owned by shard ``s``, ascending — so each shard walks its
    edges in the legacy iteration order and its private cache trace stays
    deterministic.  Shards may be empty (more arrays than edges).

    ``orientation`` records which oriented edge list the positions index
    into; :func:`execute_sharded` rejects a plan built for a different
    orientation or a different edge count (the position spaces differ, so
    reusing one silently selects the wrong edges).

    ``eq=False``: ndarray fields make the generated ``__eq__`` ambiguous,
    so plans compare (and hash) by identity.
    """

    num_arrays: int
    shard_by: str
    assignments: tuple[np.ndarray, ...]
    orientation: str = "upper"

    def __post_init__(self) -> None:
        if self.num_arrays < 1:
            raise ArchitectureError(
                f"num_arrays must be >= 1, got {self.num_arrays}"
            )
        if self.shard_by not in POSITION_PARTITIONERS:
            raise ArchitectureError(
                f"a ShardPlan splits positions of a shared edge list, so "
                f"shard_by must be one of {POSITION_PARTITIONERS}, got "
                f"{self.shard_by!r} (coloring builds ShardContexts instead "
                "— see build_shard_contexts)"
            )
        if len(self.assignments) != self.num_arrays:
            raise ArchitectureError(
                f"plan has {len(self.assignments)} shards for "
                f"{self.num_arrays} arrays"
            )

    @property
    def num_edges(self) -> int:
        """Total edges across all shards."""
        return sum(int(positions.size) for positions in self.assignments)

    def edges_per_shard(self) -> list[int]:
        """Edge count of each shard (load-balance diagnostic)."""
        return [int(positions.size) for positions in self.assignments]


@dataclass
class ShardResult:
    """Outcome of one simulated array's run over its shard."""

    shard_id: int
    edges: int
    rows: int
    accumulator: int
    events: "EventCounts"  # noqa: F821 - imported lazily to avoid a cycle
    cache_stats: CacheStatistics
    row_region_slices: int
    column_cache_slices: int


@dataclass
class ShardedOutcome:
    """Merged result of a sharded execution plus the per-shard breakdown."""

    accumulator: int
    events: "EventCounts"  # noqa: F821
    cache_stats: CacheStatistics
    shards: list[ShardResult] = field(default_factory=list)


def _partition_edges(sources: np.ndarray, num_arrays: int) -> list[np.ndarray]:
    """Contiguous edge ranges of near-equal size."""
    return list(np.array_split(np.arange(sources.size, dtype=np.int64), num_arrays))

def _partition_rows(sources: np.ndarray, num_arrays: int) -> list[np.ndarray]:
    """Row round-robin: shard ``row % num_arrays`` owns all of a row's edges."""
    shard_of = sources % num_arrays
    positions = np.arange(sources.size, dtype=np.int64)
    return [positions[shard_of == s] for s in range(num_arrays)]

def _partition_degree(sources: np.ndarray, num_arrays: int) -> list[np.ndarray]:
    """Greedy LPT over whole rows, weighted by oriented out-degree.

    Rows are assigned heaviest-first to the currently lightest shard —
    the classic longest-processing-time heuristic, deterministic via
    stable sorting.  Out-degree (successor count) is proportional to the
    candidate slice-pair work a row generates, so this balances expected
    AND operations, not just edge counts.
    """
    if sources.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return [empty.copy() for _ in range(num_arrays)]
    import heapq

    rows, counts = np.unique(sources, return_counts=True)
    order = np.argsort(counts, kind="stable")[::-1]
    shard_of_row = np.empty(rows.size, dtype=np.int64)
    heap = [(0, s) for s in range(num_arrays)]
    for r in order.tolist():
        load, target = heapq.heappop(heap)
        shard_of_row[r] = target
        heapq.heappush(heap, (load + int(counts[r]), target))
    # Edge positions are sorted by row, so mapping each edge to its row's
    # shard and selecting per shard preserves ascending position order.
    row_index = np.searchsorted(rows, sources)
    shard_of = shard_of_row[row_index]
    positions = np.arange(sources.size, dtype=np.int64)
    return [positions[shard_of == s] for s in range(num_arrays)]


_PARTITIONER_FUNCS = {
    "edges": _partition_edges,
    "rows": _partition_rows,
    "degree": _partition_degree,
}


def plan_shards(
    graph: Graph | None,
    orientation: str,
    num_arrays: int,
    shard_by: str = "edges",
    sources: np.ndarray | None = None,
) -> ShardPlan:
    """Split the oriented edge list of ``graph`` across ``num_arrays``.

    ``sources`` optionally passes the already-materialised oriented
    source array (``oriented_edges(graph, orientation)[0]``) so callers
    that hold it anyway skip a second O(m) expansion — with it given,
    ``graph`` is never touched and may be ``None`` (the incremental
    engine plans shards over delta edge lists without a graph snapshot).
    """
    if num_arrays < 1:
        raise ArchitectureError(f"num_arrays must be >= 1, got {num_arrays}")
    if shard_by == "coloring":
        raise ArchitectureError(
            "the coloring partitioner builds self-contained ShardContexts, "
            "not position assignments; use build_shard_contexts"
        )
    if shard_by not in POSITION_PARTITIONERS:
        raise ArchitectureError(
            f"shard_by must be one of {POSITION_PARTITIONERS}, got {shard_by!r}"
        )
    if sources is None:
        if graph is None:
            raise ArchitectureError(
                "plan_shards needs a graph when sources is not provided"
            )
        sources, _ = oriented_edges(graph, orientation)
    assignments = _PARTITIONER_FUNCS[shard_by](sources, num_arrays)
    return ShardPlan(
        num_arrays=num_arrays,
        shard_by=shard_by,
        assignments=tuple(assignments),
        orientation=orientation,
    )


def _run_one_shard(
    shard_id: int,
    shard_sources: np.ndarray,
    shard_destinations: np.ndarray,
    shard_join_plan,
    graph: Graph,
    row_sliced: SlicedMatrix,
    col_sliced: SlicedMatrix,
    orientation: str,
    per_array_capacity: int,
    policy,
    seed: int,
    batch_candidates: int | None,
) -> ShardResult:
    """Execute one shard on its private simulated array.

    Top-level (not a closure) so :class:`ProcessPoolExecutor` can pickle
    it along with its arguments.  ``shard_join_plan`` optionally carries
    this shard's slice of a compiled :class:`repro.core.plan.JoinPlan`
    (see :meth:`JoinPlan.subset`); the kernel then skips the merge-join.
    """
    from repro.core.accelerator import EventCounts
    from repro.core.engine import DEFAULT_BATCH_CANDIDATES

    touched_rows = np.unique(shard_sources)
    _, touched_counts = row_sliced.row_slice_ranges(touched_rows)
    row_region = int(touched_counts.max(initial=0))
    column_capacity = per_array_capacity - row_region
    if column_capacity < 1:
        raise ArchitectureError(
            f"shard {shard_id}: per-array capacity {per_array_capacity} "
            f"slices cannot hold its row region ({row_region} slices) plus "
            f"a column cache; use fewer arrays or a larger array"
        )
    accumulator, fields, cache_stats = execute_batched(
        graph,
        row_sliced,
        col_sliced,
        orientation,
        column_capacity,
        policy=policy,
        seed=seed,
        batch_candidates=(
            batch_candidates if batch_candidates else DEFAULT_BATCH_CANDIDATES
        ),
        edges=(shard_sources, shard_destinations),
        row_writes=int(touched_counts.sum()),
        plan=shard_join_plan,
    )
    return ShardResult(
        shard_id=shard_id,
        edges=int(shard_sources.size),
        rows=int(touched_rows.size),
        accumulator=accumulator,
        events=EventCounts(**fields),
        cache_stats=cache_stats,
        row_region_slices=row_region,
        column_cache_slices=column_capacity,
    )


def execute_sharded(
    graph: Graph,
    row_sliced: SlicedMatrix,
    col_sliced: SlicedMatrix,
    orientation: str,
    plan: ShardPlan,
    capacity_slices: int,
    policy,
    seed: int,
    workers: int = 0,
    batch_candidates: int | None = None,
    edge_arrays: tuple[np.ndarray, np.ndarray] | None = None,
    join_plan=None,
) -> ShardedOutcome:
    """Fan the shards of ``plan`` out over simulated arrays and merge.

    ``capacity_slices`` is the *total* computational-array capacity; each
    of the ``plan.num_arrays`` arrays owns an equal share, mirroring the
    fixed 16 MB budget the paper splits across its 128 sub-arrays.  Each
    shard reserves its own row region (sized to the rows it touches) out
    of that share and runs a private column-cache trace.

    ``workers=0`` runs shards serially in-process; ``workers>0`` fans
    them out over a :class:`ProcessPoolExecutor` — results are identical
    because shards share no mutable state.  ``edge_arrays`` optionally
    passes the already-materialised ``(sources, destinations)`` pair.

    ``join_plan`` optionally passes the full edge list's compiled
    :class:`repro.core.plan.JoinPlan`; each shard then receives its
    :meth:`~repro.core.plan.JoinPlan.subset` and skips the per-query
    merge-join.  The plan must cover exactly the edges of ``plan`` (same
    oriented edge list) — a count mismatch raises rather than silently
    mis-joining.
    """
    from repro.core.accelerator import EventCounts

    if workers < 0:
        raise ArchitectureError(f"workers must be >= 0, got {workers}")
    if plan.orientation != orientation:
        raise ArchitectureError(
            f"plan was built for orientation {plan.orientation!r} but the "
            f"run uses {orientation!r}; shard positions index different "
            "edge lists — rebuild the plan with plan_shards"
        )
    per_array_capacity = capacity_slices // plan.num_arrays
    if per_array_capacity < 2:
        raise ArchitectureError(
            f"array of {capacity_slices} slices split {plan.num_arrays} ways "
            f"leaves {per_array_capacity} slices per array; need at least 2"
        )
    if edge_arrays is None:
        sources, destinations = oriented_edges(graph, orientation)
    else:
        sources, destinations = edge_arrays
    if plan.num_edges != int(sources.size):
        raise ArchitectureError(
            f"plan covers {plan.num_edges} edges but the oriented edge list "
            f"has {sources.size}; the plan was built for a different graph "
            "— rebuild it with plan_shards"
        )
    if join_plan is not None and join_plan.num_edges != int(sources.size):
        raise ArchitectureError(
            f"join plan covers {join_plan.num_edges} edges but the oriented "
            f"edge list has {sources.size}; compile a plan for this edge list"
        )
    shared = (
        graph,
        row_sliced,
        col_sliced,
        orientation,
        per_array_capacity,
        policy,
        seed,
        batch_candidates,
    )
    jobs = [
        (
            shard_id,
            sources[positions],
            destinations[positions],
            join_plan.subset(positions) if join_plan is not None else None,
        )
        for shard_id, positions in enumerate(plan.assignments)
    ]
    if workers > 0 and len(jobs) > 1:
        # The graph and both slice structures are identical for every
        # shard: ship them once per worker via the initializer instead of
        # pickling them into each job (O(n + m) per shard otherwise).
        max_workers = min(workers, len(jobs), os.cpu_count() or 1)
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_shard_worker,
            initargs=shared,
        ) as pool:
            shard_results = list(pool.map(_run_pooled_shard, jobs))
    else:
        shard_results = [_run_one_shard(*job, *shared) for job in jobs]
    accumulator = sum(result.accumulator for result in shard_results)
    events = EventCounts()
    cache_stats = CacheStatistics()
    for result in shard_results:
        events = events + result.events
        cache_stats = cache_stats.merge(result.cache_stats)
    return ShardedOutcome(
        accumulator=accumulator,
        events=events,
        cache_stats=cache_stats,
        shards=shard_results,
    )


#: Per-process shared state installed by :func:`_init_shard_worker`.
_WORKER_SHARED: tuple | None = None


def _init_shard_worker(*shared) -> None:
    """Pool initializer: stash the run-wide read-only state once."""
    global _WORKER_SHARED
    _WORKER_SHARED = shared


def _run_pooled_shard(job: tuple) -> ShardResult:
    """Run one ``(shard_id, sources, destinations)`` job in a pool worker."""
    return _run_one_shard(*job, *_WORKER_SHARED)


# ----------------------------------------------------------------------
# Vertex-coloring partitioner: self-contained shard contexts
# ----------------------------------------------------------------------
#
# PIM-TC's insight for hardware with expensive inter-core communication:
# color the vertices with C colors and give each of the Binom(C+2, 3)
# color triples {x <= y <= z} its own processing unit.  A triangle's
# three vertex colors form a multiset that names exactly one triple, and
# all three of its edges have color pairs contained in that triple — so
# a shard holding every edge whose color pair is a sub-multiset of its
# triple can count all of its triangles *locally*.  Each edge lands in
# exactly C shards (one per choice of third color), which is the whole
# communication bill: C× edge replication up front, zero slice traffic
# at query time.
#
# Counting *exactly* the triangles of the shard's multiset needs one
# refinement: the edges induced by a triple T also close triangles whose
# multiset is a strict sub-multiset pattern of T (e.g. an {a,a,a}
# triangle lies inside every {a,a,x} shard's edge set).  Each context
# therefore splits its work into **lanes**, one per distinct witness
# color r in T: the lane's pivot edges are those whose color pair equals
# the multiset T ∖ {r}, joined against a column structure holding only
# third-vertices of color r.  Removing an element from a multiset is
# injective, so a triangle with multiset exactly T is counted by exactly
# one lane of exactly one shard — and by none elsewhere.  A shard has 3
# lanes when its triple's colors are distinct, 2 when two coincide, and
# 1 when monochromatic; C=1 degenerates to one shard with one unmasked
# lane, bit-identical to the unsharded engine.


def num_color_shards(colors: int) -> int:
    """Shards induced by ``colors`` vertex colors: ``Binom(colors+2, 3)``."""
    if colors < 1:
        raise ArchitectureError(f"colors must be >= 1, got {colors}")
    return colors * (colors + 1) * (colors + 2) // 6


def min_colors(num_arrays: int) -> int:
    """Smallest color count whose shard count covers ``num_arrays``.

    ``--shard-by=coloring`` asks for at least ``num_arrays`` independent
    units; the triple construction quantises that to the next
    ``Binom(C+2, 3)``: 1 → 1 (C=1), 4 → 4 (C=2), 16 → 20 (C=4),
    32 → 35 (C=5).
    """
    if num_arrays < 1:
        raise ArchitectureError(f"num_arrays must be >= 1, got {num_arrays}")
    colors = 1
    while num_color_shards(colors) < num_arrays:
        colors += 1
    return colors


def color_triples(colors: int) -> list[tuple[int, int, int]]:
    """All color multisets ``{x <= y <= z}``, lexicographic — shard ids."""
    if colors < 1:
        raise ArchitectureError(f"colors must be >= 1, got {colors}")
    return [
        (x, y, z)
        for x in range(colors)
        for y in range(x, colors)
        for z in range(y, colors)
    ]


def assign_colors(
    num_vertices: int, colors: int, seed: int = 0
) -> np.ndarray:
    """Deterministic seeded vertex coloring (splitmix64 finalizer).

    Hash-based rather than ``vertex % colors`` so that structured vertex
    orderings (BFS, degree sort, file order) cannot correlate with the
    color classes and skew the shard sizes; the same ``(num_vertices,
    colors, seed)`` always produces the same coloring, which is what
    lets a session rebuild identical contexts from a snapshot.
    """
    if num_vertices < 0:
        raise ArchitectureError(f"num_vertices must be >= 0, got {num_vertices}")
    if colors < 1:
        raise ArchitectureError(f"colors must be >= 1, got {colors}")
    x = np.arange(num_vertices, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x += np.uint64((seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return (x % np.uint64(colors)).astype(np.int64)


def _triple_lanes(triple: tuple[int, int, int]) -> list[tuple[int, tuple[int, int]]]:
    """The distinct ``(witness_color, pivot_pair)`` lanes of one triple.

    Removing one element from the multiset is injective, so distinct
    witness colors give distinct pivot pairs and each edge color pair
    contained in the triple matches exactly one lane.
    """
    lanes: list[tuple[int, tuple[int, int]]] = []
    for witness in dict.fromkeys(triple):
        remaining = list(triple)
        remaining.remove(witness)
        lanes.append((witness, (remaining[0], remaining[1])))
    return lanes


@dataclass(eq=False)
class ShardLane:
    """One witness-color lane of a :class:`ShardContext`.

    ``sources``/``destinations`` are the lane's pivot edges — the
    context's oriented edges whose color pair equals ``pair`` — in the
    global lexicographic order.  ``col_sliced`` is the lane's private
    column structure: the predecessor bits of *all* context edges whose
    source vertex has ``witness_color``, so the AND against the shared
    row structure keeps exactly the witnesses of that color.
    ``join_plan`` is the lane's own compiled valid-pair index
    (:func:`repro.core.plan.build_join_plan` over these structures),
    patched in place on incremental ``apply``.
    """

    witness_color: int
    pair: tuple[int, int]
    sources: np.ndarray
    destinations: np.ndarray
    col_sliced: SlicedMatrix
    join_plan: object | None = None

    @property
    def num_edges(self) -> int:
        return int(self.sources.size)

    @property
    def nbytes(self) -> int:
        plan_bytes = self.join_plan.nbytes if self.join_plan is not None else 0
        return (
            self.sources.nbytes
            + self.destinations.nbytes
            + self.col_sliced.compressed_bytes
            + plan_bytes
        )


@dataclass(eq=False)
class ShardContext:
    """A fully self-contained shard: structures, edges and plans owned.

    Unlike the :class:`ShardPlan` path — position subsets over *shared*
    slice structures, merged globally afterwards — a context carries
    everything one simulated array (or one pool process, or one remote
    host) needs to count its color triple's triangles: the shard's own
    oriented edge arrays (one lane per witness color), its own row
    :class:`SlicedMatrix` built from exactly its edges, each lane's own
    color-masked column structure, and each lane's own compiled
    :class:`~repro.core.plan.JoinPlan`.  Contexts reference **no**
    global structure, so shipping one to a worker ships the whole shard
    and repeat queries dispatch by shard id alone (see
    :class:`ContextPool`).

    ``triple`` is the color multiset this shard owns; every triangle
    whose vertex colors form that multiset is counted here and nowhere
    else.  Exactness is orientation-generic: under ``"upper"`` each
    triangle contributes once (at its (min, max) pivot edge), under
    ``"symmetric"`` six times — all six in this one shard, so the
    merged accumulator keeps its usual ``// 6``.
    """

    shard_id: int
    triple: tuple[int, int, int]
    orientation: str
    num_vertices: int
    slice_bits: int
    colors: int
    color_seed: int
    row_sliced: SlicedMatrix
    lanes: list[ShardLane] = field(default_factory=list)

    @property
    def num_edges(self) -> int:
        """Oriented edges this context owns (every lane's pivot edges)."""
        return sum(lane.num_edges for lane in self.lanes)

    @property
    def nbytes(self) -> int:
        """Resident footprint: structures, edge arrays and lane plans."""
        return self.row_sliced.compressed_bytes + sum(
            lane.nbytes for lane in self.lanes
        )

    def touched_rows(self) -> np.ndarray:
        """Distinct pivot rows across all lanes (row-region sizing)."""
        if not self.lanes:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([lane.sources for lane in self.lanes]))

    def owned_mask(
        self, delta_edges: np.ndarray, vertex_colors: np.ndarray
    ) -> np.ndarray:
        """Which canonical delta edges this shard owns (pair ⊆ triple)."""
        lo = vertex_colors[delta_edges[:, 0]]
        hi = vertex_colors[delta_edges[:, 1]]
        lo, hi = np.minimum(lo, hi), np.maximum(lo, hi)
        x, y, z = self.triple
        return (
            ((lo == x) & (hi == y))
            | ((lo == x) & (hi == z))
            | ((lo == y) & (hi == z))
        )

    def apply_delta(
        self,
        delta_edges: np.ndarray,
        vertex_colors: np.ndarray,
        insert: bool,
        batch_candidates: int | None = None,
    ) -> bool:
        """Route one canonical delta batch into this shard, in place.

        Mutates only what the batch touches: the shard row structure
        gets every owned oriented bit (one :class:`StructureDelta`
        shared by all lane-plan patches), each lane's column structure
        gets the owned bits whose *source* vertex carries the lane's
        witness color, and each lane whose pivot pair matches an owned
        edge splices its edge list and patches its compiled plan
        (:func:`repro.core.plan.patch_join_plan`).  Returns ``False``
        without touching anything when the shard owns no edge of the
        batch — the routing property that makes sharded ``apply``
        O(owning shards), not O(all shards).
        """
        from repro.core.engine import DEFAULT_BATCH_CANDIDATES
        from repro.core.incremental import StructureDelta, clear_bits, set_bits
        from repro.core.plan import (
            merge_oriented_edges,
            oriented_structure_bits,
            patch_join_plan,
        )

        owned = self.owned_mask(delta_edges, vertex_colors)
        if not bool(owned.any()):
            return False
        owned_edges = delta_edges[owned]
        mutate = set_bits if insert else clear_bits
        row_bits = oriented_structure_bits(owned_edges, self.orientation, "row")
        row_delta = mutate(self.row_sliced, *row_bits)
        # Oriented (source, destination) directions of the owned batch —
        # the coordinates both the lane column masks and the lane edge
        # splices are expressed in.
        u, v = owned_edges[:, 0], owned_edges[:, 1]
        if self.orientation == "upper":
            delta_src, delta_dst = u, v
        else:
            delta_src = np.concatenate([u, v])
            delta_dst = np.concatenate([v, u])
        src_colors = vertex_colors[delta_src]
        pair_lo = np.minimum(vertex_colors[u], vertex_colors[v])
        pair_hi = np.maximum(vertex_colors[u], vertex_colors[v])
        candidates = batch_candidates or DEFAULT_BATCH_CANDIDATES
        for lane in self.lanes:
            # Column bits route by *source-vertex* color (the witness
            # side of the AND); edge-list membership routes by the
            # edge's color *pair* (the pivot side).  These are different
            # selections on purpose.
            mask = src_colors == lane.witness_color
            if bool(mask.any()):
                col_delta = mutate(
                    lane.col_sliced, delta_dst[mask], delta_src[mask]
                )
            else:
                col_delta = StructureDelta.unchanged()
            lane_owned = (pair_lo == lane.pair[0]) & (pair_hi == lane.pair[1])
            old_src, old_dst = lane.sources, lane.destinations
            if bool(lane_owned.any()):
                new_src, new_dst = merge_oriented_edges(
                    old_src,
                    old_dst,
                    owned_edges[lane_owned],
                    self.orientation,
                    self.num_vertices,
                    insert,
                )
            else:
                new_src, new_dst = old_src, old_dst
            if lane.join_plan is not None:
                lane.join_plan = patch_join_plan(
                    lane.join_plan,
                    self.row_sliced,
                    lane.col_sliced,
                    old_src,
                    old_dst,
                    new_src,
                    new_dst,
                    row_delta,
                    col_delta,
                    candidates,
                )
            lane.sources, lane.destinations = new_src, new_dst
        return True


def build_shard_contexts(
    graph: Graph | None,
    orientation: str,
    num_arrays: int,
    *,
    slice_bits: int = 64,
    seed: int = 0,
    edge_arrays: tuple[np.ndarray, np.ndarray] | None = None,
    num_vertices: int | None = None,
    use_plan: bool = True,
    batch_candidates: int | None = None,
) -> list[ShardContext]:
    """Build the self-contained coloring shards of a graph.

    ``num_arrays`` is quantised up to the next triple count:
    ``C = min_colors(num_arrays)`` colors give ``Binom(C+2, 3)``
    contexts (the effective array count).  ``edge_arrays`` optionally
    passes the already-materialised oriented ``(sources, destinations)``
    (then ``graph`` may be ``None`` if ``num_vertices`` is given).
    ``use_plan=False`` skips the per-lane plan compiles — queries then
    re-derive the merge-join, bit-identically.

    Construction cost is the PIM-TC replication bill: each oriented
    edge is copied into ``C`` contexts and every context slices its own
    structures.  That one-time cost is what
    :meth:`repro.arch.perf.PimPerformanceModel.evaluate_context_build`
    prices; at query time the contexts are communication-free.
    """
    from repro.core.plan import build_join_plan

    if orientation not in ("upper", "symmetric"):
        raise ArchitectureError(
            f"orientation must be 'upper' or 'symmetric', got {orientation!r}"
        )
    if edge_arrays is None:
        if graph is None:
            raise ArchitectureError(
                "build_shard_contexts needs a graph when edge_arrays "
                "is not provided"
            )
        sources, destinations = oriented_edges(graph, orientation)
    else:
        sources, destinations = edge_arrays
        sources = np.asarray(sources, dtype=np.int64)
        destinations = np.asarray(destinations, dtype=np.int64)
    if num_vertices is None:
        if graph is None:
            raise ArchitectureError(
                "build_shard_contexts needs num_vertices when graph is None"
            )
        num_vertices = graph.num_vertices
    colors = min_colors(num_arrays)
    vertex_colors = assign_colors(num_vertices, colors, seed)
    src_colors = vertex_colors[sources] if sources.size else np.empty(0, np.int64)
    dst_colors = (
        vertex_colors[destinations] if destinations.size else np.empty(0, np.int64)
    )
    pair_lo = np.minimum(src_colors, dst_colors)
    pair_hi = np.maximum(src_colors, dst_colors)
    # Group edge positions by color pair once: C(C+1)/2 small buckets,
    # each ascending, so every lane keeps the global lexicographic edge
    # order (what merge_oriented_edges and the cache traces rely on).
    pair_positions: dict[tuple[int, int], np.ndarray] = {}
    for x in range(colors):
        for y in range(x, colors):
            pair_positions[(x, y)] = np.flatnonzero(
                (pair_lo == x) & (pair_hi == y)
            )
    contexts: list[ShardContext] = []
    for shard_id, triple in enumerate(color_triples(colors)):
        lane_specs = _triple_lanes(triple)
        own_positions = np.sort(
            np.concatenate([pair_positions[pair] for _, pair in lane_specs])
        )
        own_src = sources[own_positions]
        own_dst = destinations[own_positions]
        # Lexicographic (source, destination) order is non-decreasing in
        # the slice key, so from_nonzeros skips its argsort here.
        row_sliced = SlicedMatrix.from_nonzeros(
            own_src, own_dst, num_vertices, num_vertices, slice_bits=slice_bits
        )
        own_src_colors = (
            vertex_colors[own_src] if own_src.size else np.empty(0, np.int64)
        )
        lanes: list[ShardLane] = []
        for witness, pair in lane_specs:
            positions = pair_positions[pair]
            lane_src = sources[positions]
            lane_dst = destinations[positions]
            mask = own_src_colors == witness
            col_sliced = SlicedMatrix.from_nonzeros(
                own_dst[mask],
                own_src[mask],
                num_vertices,
                num_vertices,
                slice_bits=slice_bits,
            )
            join_plan = None
            if use_plan:
                from repro.core.engine import DEFAULT_BATCH_CANDIDATES

                join_plan = build_join_plan(
                    row_sliced,
                    col_sliced,
                    lane_src,
                    lane_dst,
                    batch_candidates or DEFAULT_BATCH_CANDIDATES,
                )
            lanes.append(
                ShardLane(
                    witness_color=witness,
                    pair=pair,
                    sources=lane_src,
                    destinations=lane_dst,
                    col_sliced=col_sliced,
                    join_plan=join_plan,
                )
            )
        contexts.append(
            ShardContext(
                shard_id=shard_id,
                triple=triple,
                orientation=orientation,
                num_vertices=num_vertices,
                slice_bits=slice_bits,
                colors=colors,
                color_seed=seed,
                row_sliced=row_sliced,
                lanes=lanes,
            )
        )
    return contexts


def context_balance(contexts: list[ShardContext]) -> float:
    """Partitioner balance: max shard edges over mean shard edges.

    1.0 is perfect balance; the ratio is the latency multiplier the
    slowest shard imposes on an otherwise even fleet.  Empty fleets (or
    all-empty shards) report 1.0.
    """
    if not contexts:
        return 1.0
    loads = [ctx.num_edges for ctx in contexts]
    mean = sum(loads) / len(loads)
    return max(loads) / mean if mean else 1.0


def _run_context(
    context: ShardContext,
    per_array_capacity: int,
    policy,
    seed: int,
    batch_candidates: int | None,
    use_plan: bool,
) -> ShardResult:
    """Execute one self-contained context on its private array.

    Each lane is one gather → AND → popcount pass over the shard's own
    structures; lane accumulators, events and cache statistics merge
    into the shard's :class:`ShardResult`.  Nothing here reads global
    state — the property the process-pool path (and the no-shared-
    structures test) relies on.
    """
    from repro.core.accelerator import EventCounts
    from repro.core.engine import DEFAULT_BATCH_CANDIDATES
    from repro.core.kernels import CountKernel, execute_workload

    touched = context.touched_rows()
    _, touched_counts = context.row_sliced.row_slice_ranges(touched)
    row_region = int(touched_counts.max(initial=0))
    column_capacity = per_array_capacity - row_region
    if column_capacity < 1:
        raise ArchitectureError(
            f"shard {context.shard_id}: per-array capacity "
            f"{per_array_capacity} slices cannot hold its row region "
            f"({row_region} slices) plus a column cache; use fewer arrays "
            "or a larger array"
        )
    accumulator = 0
    events = EventCounts()
    cache_stats = CacheStatistics()
    kernel = CountKernel()
    for lane in context.lanes:
        lane_rows = np.unique(lane.sources)
        _, lane_counts = context.row_sliced.row_slice_ranges(lane_rows)
        outcome = execute_workload(
            kernel,
            None,
            context.row_sliced,
            lane.col_sliced,
            context.orientation,
            column_capacity,
            policy=policy,
            seed=seed,
            batch_candidates=batch_candidates or DEFAULT_BATCH_CANDIDATES,
            edges=(lane.sources, lane.destinations),
            row_writes=int(lane_counts.sum()),
            plan=lane.join_plan if use_plan else None,
        )
        accumulator += outcome.accumulator
        events = events + EventCounts(**outcome.events)
        cache_stats = cache_stats.merge(outcome.cache_stats)
    return ShardResult(
        shard_id=context.shard_id,
        edges=context.num_edges,
        rows=int(touched.size),
        accumulator=accumulator,
        events=events,
        cache_stats=cache_stats,
        row_region_slices=row_region,
        column_cache_slices=column_capacity,
    )


def _merge_shard_results(shard_results: list[ShardResult]) -> ShardedOutcome:
    """Sum accumulators and additive counters across shard results."""
    from repro.core.accelerator import EventCounts

    accumulator = sum(result.accumulator for result in shard_results)
    events = EventCounts()
    cache_stats = CacheStatistics()
    for result in shard_results:
        events = events + result.events
        cache_stats = cache_stats.merge(result.cache_stats)
    return ShardedOutcome(
        accumulator=accumulator,
        events=events,
        cache_stats=cache_stats,
        shards=shard_results,
    )


def _context_capacity(capacity_slices: int, num_contexts: int) -> int:
    per_array_capacity = capacity_slices // num_contexts
    if per_array_capacity < 2:
        raise ArchitectureError(
            f"array of {capacity_slices} slices split {num_contexts} ways "
            f"leaves {per_array_capacity} slices per array; need at least 2"
        )
    return per_array_capacity


def execute_contexts(
    contexts: list[ShardContext],
    capacity_slices: int,
    policy,
    seed: int,
    workers: int = 0,
    batch_candidates: int | None = None,
    use_plan: bool = True,
    backing: str = "pickle",
) -> ShardedOutcome:
    """Run a list of self-contained contexts and merge their results.

    The communication-free counterpart of :func:`execute_sharded`: no
    shared slice structures, no join-plan subsetting, no global edge
    list — each context executes against what it owns.  ``workers>0``
    fans contexts out over worker processes: ``backing="pickle"``
    (default for a one-shot call) ships each whole shard through a
    :class:`ProcessPoolExecutor` initializer; ``backing="shm"`` adopts
    the contexts into shared segments and sweeps them through a
    transient zero-copy :class:`ContextPool`.  For resident repeat-query
    serving, hold a :class:`ContextPool` open instead.
    """
    if not contexts:
        raise ArchitectureError("execute_contexts needs at least one context")
    if workers < 0:
        raise ArchitectureError(f"workers must be >= 0, got {workers}")
    per_array_capacity = _context_capacity(capacity_slices, len(contexts))
    if workers > 0 and len(contexts) > 1:
        if backing == "shm":
            with ContextPool(
                contexts,
                capacity_slices,
                policy,
                seed,
                workers=workers,
                batch_candidates=batch_candidates,
                backing="shm",
            ) as pool:
                return pool.run(use_plan=use_plan)
        max_workers = min(workers, len(contexts), os.cpu_count() or 1)
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_context_worker,
            initargs=(contexts, per_array_capacity, policy, seed, batch_candidates),
        ) as pool:
            shard_results = list(
                pool.map(
                    _run_resident_context,
                    [(ctx.shard_id, use_plan) for ctx in contexts],
                )
            )
    else:
        shard_results = [
            _run_context(
                ctx, per_array_capacity, policy, seed, batch_candidates, use_plan
            )
            for ctx in contexts
        ]
    return _merge_shard_results(shard_results)


#: Per-process resident contexts installed by :func:`_init_context_worker`.
_CONTEXT_SHARED: tuple | None = None


def _init_context_worker(
    contexts, per_array_capacity, policy, seed, batch_candidates
) -> None:
    """Pool initializer: adopt the shipped contexts as process residents."""
    global _CONTEXT_SHARED
    _CONTEXT_SHARED = (
        {ctx.shard_id: ctx for ctx in contexts},
        per_array_capacity,
        policy,
        seed,
        batch_candidates,
    )


def _run_resident_context(job: tuple[int, bool]) -> ShardResult:
    """Run one resident context by shard id (the O(1) dispatch path)."""
    shard_id, use_plan = job
    by_id, per_array_capacity, policy, seed, batch_candidates = _CONTEXT_SHARED
    return _run_context(
        by_id[shard_id], per_array_capacity, policy, seed, batch_candidates, use_plan
    )


# ----------------------------------------------------------------------
# Zero-copy manifests: contexts as segment names instead of array bytes
# ----------------------------------------------------------------------
#
# A :class:`ShardContext` under ``backing="shm"`` lives in named
# shared-memory segments (see :mod:`repro.storage.backing`).  What
# crosses the process boundary is a *manifest* — nested dicts of
# ``{"segment": name, "dtype": ..., "shape": ...}`` entries plus the
# scalar fields (structure versions, plan validity counters) the worker
# needs to reassemble bit-identical ``SlicedMatrix``/``JoinPlan``
# objects over attached views of the same physical pages.  Arrays the
# store does not share (empty ones) travel inline by value.


def _share_array(owner, attr: str, store) -> dict:
    """Adopt ``owner.attr`` into ``store`` (rebinding it in place) and
    return its manifest entry.

    The rebind is the load-bearing step: after it, the parent's in-place
    payload mutations (``set_bits``/``clear_bits``) write the very pages
    attached workers read, so deltas need no re-ship.
    """
    array = getattr(owner, attr)
    shared = store.adopt(array)
    if shared is not array:
        setattr(owner, attr, shared)
    name = store.segment_of(shared)
    if name is None:
        return {"array": shared}
    return {"segment": name, "dtype": str(shared.dtype), "shape": shared.shape}


def _share_sliced(sliced: SlicedMatrix, store) -> dict:
    return {
        "num_rows": sliced.num_rows,
        "num_cols": sliced.num_cols,
        "slice_bits": sliced.slice_bits,
        "structure_version": sliced.structure_version,
        "indptr": _share_array(sliced, "indptr", store),
        "slice_ids": _share_array(sliced, "slice_ids", store),
        "data": _share_array(sliced, "data", store),
    }


def _share_plan(plan, store) -> dict | None:
    if plan is None:
        return None
    return {
        "num_edges": plan.num_edges,
        "row_version": plan.row_version,
        "col_version": plan.col_version,
        "row_valid_slices": plan.row_valid_slices,
        "col_valid_slices": plan.col_valid_slices,
        "row_positions": _share_array(plan, "row_positions", store),
        "col_positions": _share_array(plan, "col_positions", store),
        "trace_keys": _share_array(plan, "trace_keys", store),
        "pair_counts": _share_array(plan, "pair_counts", store),
    }


def _share_context(context: ShardContext, store) -> dict:
    """Adopt every array of ``context`` into ``store`` and manifest it."""
    return {
        "shard_id": context.shard_id,
        "triple": context.triple,
        "orientation": context.orientation,
        "num_vertices": context.num_vertices,
        "slice_bits": context.slice_bits,
        "colors": context.colors,
        "color_seed": context.color_seed,
        "row_sliced": _share_sliced(context.row_sliced, store),
        "lanes": [
            {
                "witness_color": lane.witness_color,
                "pair": lane.pair,
                "sources": _share_array(lane, "sources", store),
                "destinations": _share_array(lane, "destinations", store),
                "col_sliced": _share_sliced(lane.col_sliced, store),
                "join_plan": _share_plan(lane.join_plan, store),
            }
            for lane in context.lanes
        ],
    }


def _attach_entry(entry: dict, segments: dict, names: set) -> np.ndarray:
    """Materialise one manifest entry: attached view or inline array."""
    inline = entry.get("array")
    if inline is not None:
        return inline
    name = entry["segment"]
    segment = segments.get(name)
    if segment is None:
        from repro.storage.backing import attach_segment

        segment = attach_segment(name)
        segments[name] = segment
    names.add(name)
    return np.ndarray(
        tuple(entry["shape"]), dtype=np.dtype(entry["dtype"]), buffer=segment.buf
    )


def _sliced_from_manifest(manifest: dict, segments: dict, names: set) -> SlicedMatrix:
    sliced = SlicedMatrix(
        int(manifest["num_rows"]),
        int(manifest["num_cols"]),
        int(manifest["slice_bits"]),
        _attach_entry(manifest["indptr"], segments, names),
        _attach_entry(manifest["slice_ids"], segments, names),
        _attach_entry(manifest["data"], segments, names),
    )
    # The constructor resets the version; restore the recorded one so
    # JoinPlan.matches() staleness checks agree with the owner's plans.
    sliced.structure_version = int(manifest["structure_version"])
    return sliced


def _plan_from_manifest(manifest: dict | None, segments: dict, names: set):
    if manifest is None:
        return None
    from repro.core.plan import JoinPlan

    return JoinPlan(
        row_positions=_attach_entry(manifest["row_positions"], segments, names),
        col_positions=_attach_entry(manifest["col_positions"], segments, names),
        trace_keys=_attach_entry(manifest["trace_keys"], segments, names),
        pair_counts=_attach_entry(manifest["pair_counts"], segments, names),
        num_edges=int(manifest["num_edges"]),
        row_version=int(manifest["row_version"]),
        col_version=int(manifest["col_version"]),
        row_valid_slices=int(manifest["row_valid_slices"]),
        col_valid_slices=int(manifest["col_valid_slices"]),
    )


def _context_from_manifest(manifest: dict, segments: dict, names: set) -> ShardContext:
    return ShardContext(
        shard_id=int(manifest["shard_id"]),
        triple=tuple(manifest["triple"]),
        orientation=manifest["orientation"],
        num_vertices=int(manifest["num_vertices"]),
        slice_bits=int(manifest["slice_bits"]),
        colors=int(manifest["colors"]),
        color_seed=int(manifest["color_seed"]),
        row_sliced=_sliced_from_manifest(manifest["row_sliced"], segments, names),
        lanes=[
            ShardLane(
                witness_color=int(lane["witness_color"]),
                pair=tuple(lane["pair"]),
                sources=_attach_entry(lane["sources"], segments, names),
                destinations=_attach_entry(lane["destinations"], segments, names),
                col_sliced=_sliced_from_manifest(
                    lane["col_sliced"], segments, names
                ),
                join_plan=_plan_from_manifest(lane["join_plan"], segments, names),
            )
            for lane in manifest["lanes"]
        ],
    )


def _sliced_identity(sliced: SlicedMatrix) -> tuple:
    return (
        sliced.num_rows,
        sliced.num_cols,
        sliced.structure_version,
        id(sliced.indptr),
        id(sliced.slice_ids),
        id(sliced.data),
    )


def _plan_identity(plan) -> tuple | None:
    if plan is None:
        return None
    return (
        plan.num_edges,
        plan.row_version,
        plan.col_version,
        plan.row_valid_slices,
        plan.col_valid_slices,
        id(plan.row_positions),
        id(plan.col_positions),
        id(plan.trace_keys),
        id(plan.pair_counts),
    )


def _context_identity(context: ShardContext) -> tuple:
    """Cheap publish-time change probe: array identities plus scalars.

    If nothing in this tuple moved since the last export, no array was
    reallocated and no manifest scalar changed, so the previously
    exported manifest is still exact — in-place payload writes landed
    in the shared pages and need no re-export at all.  Any difference
    falls through to a full re-export plus fingerprint comparison.
    """
    return (
        _sliced_identity(context.row_sliced),
        tuple(
            (
                lane.witness_color,
                lane.pair,
                id(lane.sources),
                id(lane.destinations),
                _sliced_identity(lane.col_sliced),
                _plan_identity(lane.join_plan),
            )
            for lane in context.lanes
        ),
    )


def _manifest_signature(value):
    """A hashable fingerprint of a manifest subtree.

    Equal signatures mean a worker's cached rebuild is still valid:
    shared entries compare by segment identity (payload writes land in
    the attached pages and need no rebuild to become visible), inline
    entries by content, scalars by value.  :meth:`ContextPool.publish`
    compares fingerprints to bump per-shard versions only for shards a
    structural mutation actually reallocated.
    """
    if isinstance(value, dict):
        if "segment" in value:
            return ("seg", value["segment"], value["dtype"], tuple(value["shape"]))
        if "array" in value:
            array = value["array"]
            return ("inline", str(array.dtype), array.shape, array.tobytes())
        return tuple(
            (key, _manifest_signature(item)) for key, item in sorted(value.items())
        )
    if isinstance(value, list):
        return tuple(_manifest_signature(item) for item in value)
    return value


#: Worker-process execution params installed by :func:`_init_pool_worker`.
_POOL_SHARED: tuple | None = None
#: Worker-process attached segments: name -> SharedMemory (attach once).
_POOL_SEGMENTS: dict = {}
#: Worker-process rebuilt contexts: shard_id -> (generation, context,
#: segment names the context references).
_POOL_CONTEXTS: dict = {}


def _init_pool_worker(per_array_capacity, policy, seed, batch_candidates) -> None:
    """Zero-copy pool initializer: execution params only, no array bytes."""
    global _POOL_SHARED
    _POOL_SHARED = (per_array_capacity, policy, seed, batch_candidates)
    _POOL_SEGMENTS.clear()
    _POOL_CONTEXTS.clear()


def _evict_stale_segments() -> None:
    """Close attached segments no resident context references any more.

    Structural mutations republish reallocated arrays under fresh
    segment names; once every shard caching the old name has rebuilt,
    the worker's attachment is the last thing pinning those pages.
    """
    referenced: set = set()
    for _version, _context, names in _POOL_CONTEXTS.values():
        referenced |= names
    for name in [n for n in _POOL_SEGMENTS if n not in referenced]:
        segment = _POOL_SEGMENTS.pop(name)
        try:
            segment.close()
        except BufferError:  # pragma: no cover - an array still views it
            _POOL_SEGMENTS[name] = segment


def _resident_pool_context(
    shard_id: int, version: int, manifest: dict
) -> ShardContext:
    """The worker's cached context for a shard, rebuilt on a new version.

    The version is per shard, not per pool: a publish that only lands
    in-place payload deltas leaves every version untouched, so workers
    keep their built contexts and the sweep reads the new bytes straight
    out of the attached pages.
    """
    cached = _POOL_CONTEXTS.get(shard_id)
    if cached is not None and cached[0] == version:
        return cached[1]
    names: set = set()
    context = _context_from_manifest(manifest, _POOL_SEGMENTS, names)
    _POOL_CONTEXTS[shard_id] = (version, context, names)
    _evict_stale_segments()
    return context


def _run_manifest_chunk(job: tuple) -> list[ShardResult]:
    """Run one batched dispatch message: every shard in the chunk."""
    entries, use_plan = job
    per_array_capacity, policy, seed, batch_candidates = _POOL_SHARED
    results = []
    for shard_id, version, manifest in entries:
        context = _resident_pool_context(shard_id, version, manifest)
        results.append(
            _run_context(
                context, per_array_capacity, policy, seed, batch_candidates, use_plan
            )
        )
    return results


class ContextPool:
    """A persistent worker pool with the shard contexts resident.

    The :class:`ShardPlan` path pays its data movement on *every*
    sharded call: a fresh process pool, the graph and both global slice
    structures shipped through the initializer, per-shard edge subsets
    and plan slices pickled into each job.  Self-contained contexts
    invert that, and the pool supports two residency planes:

    ``backing="shm"`` (default)
        Zero-copy.  Every context array is adopted into named
        shared-memory segments (:class:`repro.storage.BackingStore`,
        ``kind="shm"``) at construction; workers attach each segment
        **once** and every :meth:`run` sends one batched message per
        worker — a chunk of shard ids plus byte-free manifests — instead
        of one future per shard.  In-place payload deltas applied by the
        owner are visible to workers with **no re-ship**; structural
        mutations are fenced by :meth:`publish`, which bumps a
        generation counter so workers rebuild from the republished
        manifests.  :meth:`run` and :meth:`publish` serialise on one
        lock, so a concurrent delta is either fully visible to a sweep
        or fully invisible — never torn.

    ``backing="pickle"``
        The PR 9 plane, kept as the measured baseline: the full context
        list is pickled into each worker via the pool initializer and
        sweeps dispatch ``(shard_id, use_plan)`` futures.

    Use as a context manager or call :meth:`close` (idempotent; a
    worker crash mid-sweep reclaims the executor and every shm segment
    before the error propagates).  Results are bit-identical to
    :func:`execute_contexts` serial execution.
    """

    def __init__(
        self,
        contexts: list[ShardContext],
        capacity_slices: int,
        policy,
        seed: int,
        workers: int,
        batch_candidates: int | None = None,
        backing: str = "shm",
    ) -> None:
        if not contexts:
            raise ArchitectureError("ContextPool needs at least one context")
        if workers < 1:
            raise ArchitectureError(
                f"ContextPool needs workers >= 1, got {workers}"
            )
        if backing not in ("shm", "pickle"):
            raise ArchitectureError(
                f"ContextPool backing must be 'shm' or 'pickle', got {backing!r}"
            )
        per_array_capacity = _context_capacity(capacity_slices, len(contexts))
        self.backing = backing
        self._contexts = contexts
        self._shard_ids = [ctx.shard_id for ctx in contexts]
        self._initargs = (per_array_capacity, policy, seed, batch_candidates)
        self._max_workers = min(workers, len(contexts), os.cpu_count() or 1)
        self._lock = threading.Lock()
        self._closed = False
        self._generation = 0
        self._store = None
        self._manifests: dict[int, dict] = {}
        self._versions: dict[int, int] = {}
        self._signatures: dict[int, tuple] = {}
        self._identities: dict[int, tuple] = {}
        if backing == "shm":
            from repro.storage.backing import BackingStore

            self._store = BackingStore("shm")
            self._manifests = {
                ctx.shard_id: _share_context(ctx, self._store) for ctx in contexts
            }
            self._versions = {sid: 0 for sid in self._manifests}
            self._signatures = {
                sid: _manifest_signature(manifest)
                for sid, manifest in self._manifests.items()
            }
            # Identities are recorded after export: adoption rebinds the
            # context arrays onto the shared pages, so these are the ids
            # a structural mutation would replace.
            self._identities = {
                ctx.shard_id: _context_identity(ctx) for ctx in contexts
            }
            self._executor = ProcessPoolExecutor(
                max_workers=self._max_workers,
                initializer=_init_pool_worker,
                initargs=self._initargs,
            )
        else:
            self._executor = ProcessPoolExecutor(
                max_workers=self._max_workers,
                initializer=_init_context_worker,
                initargs=(contexts,) + self._initargs,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def workers(self) -> int:
        """Worker processes the pool dispatches over."""
        return self._max_workers

    @property
    def generation(self) -> int:
        """Publish-fence counter (bumps on every :meth:`publish`)."""
        return self._generation

    @property
    def shared_bytes(self) -> int:
        """Bytes in live shared segments (0 under pickle backing)."""
        return self._store.shared_bytes if self._store is not None else 0

    @property
    def shared_segments(self) -> int:
        """Live shared segments (0 under pickle backing)."""
        return self._store.shared_segments if self._store is not None else 0

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Sweeps and deltas
    # ------------------------------------------------------------------

    def run(self, use_plan: bool = True) -> ShardedOutcome:
        """One full sweep over the resident shards.

        Under shm backing: one batched message per worker (chunked
        shard-id lists + manifests), attached arrays read zero-copy.
        Under pickle backing: one ``(shard_id, use_plan)`` future per
        shard against the shipped copies.
        """
        with self._lock:
            if self._closed:
                raise ArchitectureError("ContextPool is closed")
            try:
                if self.backing == "pickle":
                    shard_results = list(
                        self._executor.map(
                            _run_resident_context,
                            [(sid, use_plan) for sid in self._shard_ids],
                        )
                    )
                else:
                    chunks = [
                        self._shard_ids[i :: self._max_workers]
                        for i in range(self._max_workers)
                    ]
                    jobs = [
                        (
                            [
                                (sid, self._versions[sid], self._manifests[sid])
                                for sid in chunk
                            ],
                            use_plan,
                        )
                        for chunk in chunks
                        if chunk
                    ]
                    shard_results = [
                        result
                        for chunk_results in self._executor.map(
                            _run_manifest_chunk, jobs
                        )
                        for result in chunk_results
                    ]
                    shard_results.sort(key=lambda result: result.shard_id)
            except BrokenProcessPool:
                # A worker died mid-sweep: nothing it held can be
                # trusted and the executor is unusable — reclaim the
                # processes and every shm segment before surfacing.
                self._reclaim()
                raise ArchitectureError(
                    "ContextPool worker died mid-sweep; the pool has been "
                    "closed and its shared segments reclaimed"
                ) from None
        return _merge_shard_results(shard_results)

    def publish(self, mutator=None) -> None:
        """Fence a delta: apply ``mutator`` (if any) and re-export.

        Runs under the same lock as :meth:`run`, so the delta is atomic
        with respect to sweeps — a sweep observes either none of it or
        all of it.  Re-adopting each context re-exports only arrays a
        structural mutation reallocated (in-place payload writes already
        landed in the shared pages), and only shards whose manifest
        fingerprint actually changed get a version bump — workers keep
        their cached rebuilds for every other shard, so a payload-only
        delta costs the next sweep nothing.  Under pickle backing the
        workers hold stale copies, so the executor is recycled to
        re-ship.
        """
        with self._lock:
            if self._closed:
                raise ArchitectureError("ContextPool is closed")
            if mutator is not None:
                mutator()
            self._generation += 1
            if self.backing == "shm":
                for context in self._contexts:
                    sid = context.shard_id
                    if _context_identity(context) == self._identities[sid]:
                        # No array reallocated, no manifest scalar moved:
                        # the exported manifest is still exact and the
                        # workers' cached rebuilds stay valid.
                        continue
                    manifest = _share_context(context, self._store)
                    signature = _manifest_signature(manifest)
                    if signature != self._signatures[sid]:
                        self._versions[sid] += 1
                        self._signatures[sid] = signature
                    self._manifests[sid] = manifest
                    self._identities[sid] = _context_identity(context)
            else:
                self._executor.shutdown(wait=True)
                self._executor = ProcessPoolExecutor(
                    max_workers=self._max_workers,
                    initializer=_init_context_worker,
                    initargs=(self._contexts,) + self._initargs,
                )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _reclaim(self) -> None:
        # Lock held by the caller.  Safe to run repeatedly.
        if self._closed:
            return
        self._closed = True
        try:
            self._executor.shutdown(wait=True, cancel_futures=True)
        finally:
            self._manifests = {}
            self._versions = {}
            self._signatures = {}
            self._identities = {}
            if self._store is not None:
                self._store.close()

    def close(self) -> None:
        """Shut the workers down and unlink every shared segment.

        Idempotent: safe to call any number of times, including after a
        mid-sweep worker crash already reclaimed the pool.
        """
        with self._lock:
            self._reclaim()

    def __enter__(self) -> "ContextPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
