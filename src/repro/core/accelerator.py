"""TCIM accelerator orchestration — paper Algorithm 1.

Ties the pieces together the way the processing-in-MRAM controller does
(Fig. 4): the graph is sliced and compressed (Section IV-B), valid slice
pairs are streamed into the computational array, row slices are loaded
once per row and overwritten by the next row, and column slices go through
the LRU-managed array region (Section IV-A).  Every AND + BitCount the
hardware would execute is counted, and the resulting event totals are what
the architecture model (:mod:`repro.arch.perf`) prices into latency and
energy for Table V and Fig. 6.

The functional result (the triangle count) is exact and is validated
against all baselines by the test-suite.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, fields

import numpy as np

from repro import registry
from repro.errors import ArchitectureError
from repro.graph.graph import Graph
from repro.core.reuse import (
    CacheStatistics,
    ReplacementPolicy,
    SliceCache,
)
from repro.core.slicing import (
    SlicedMatrix,
    SliceStatistics,
    slice_statistics,
    valid_pair_positions,
)

__all__ = ["AcceleratorConfig", "EventCounts", "TCIMRunResult", "TCIMAccelerator"]


@dataclass(frozen=True)
class AcceleratorConfig:
    """Algorithm-level configuration of a TCIM run.

    Defaults mirror the paper's evaluation setup: 64-bit slices and a
    16 MB computational STT-MRAM array with LRU replacement.

    ``engine`` selects the execution engine: ``"vectorized"`` (default)
    runs the batched numpy dataflow of :mod:`repro.core.engine`;
    ``"legacy"`` runs the original per-edge Python loop, kept as the
    differential-testing oracle.  Both produce bit-identical results.

    ``num_arrays`` splits the run across that many simulated sub-arrays
    (the paper's Fig. 4 bank organisation, see
    :mod:`repro.core.sharding`), each owning an equal share of
    ``array_bytes`` with its own row region and column-slice cache.
    ``shard_by`` picks the partitioner (``"edges"``, ``"rows"`` or
    ``"degree"``) and ``workers`` > 0 fans shards out over a process
    pool (0 = serial in-process).  ``num_arrays=1`` is bit-identical to
    the plain vectorized engine; sharded runs require it (the legacy
    loop stays single-array).

    ``use_plan`` lets a resident caller (:class:`repro.api.TCIMSession`)
    compile the valid-pair join once per graph generation
    (:mod:`repro.core.plan`) and serve repeat queries from it; disable
    (CLI ``--no-plan``) to force the per-query merge-join.  Results are
    bit-identical either way — the flag trades plan memory for repeat-
    query latency, never exactness.  It only affects the vectorized
    engine; the legacy oracle never uses plans.

    ``storage_dir`` turns on the out-of-core storage tier
    (:mod:`repro.storage`): slice payloads and compiled plan arrays at
    or above ``spill_threshold_bytes`` (default 8 MiB; 0 spills every
    array) become disk-backed ``np.memmap`` files under
    ``<storage_dir>/spill``, plan compilation streams through bounded
    edge windows, and the session pool pages evicted sessions out as
    snapshots under ``<storage_dir>/pool``.  ``None`` (the default)
    keeps everything on heap — byte-identical results either way.

    ``backing`` names the resident tier explicitly: ``"ram"``,
    ``"memmap"`` (requires ``storage_dir``) or ``"shm"`` — the
    zero-copy shared-memory execution plane, under which coloring-shard
    sweeps with ``workers > 0`` run through an shm-backed
    :class:`~repro.core.sharding.ContextPool` (workers attach named
    segments once; sweeps dispatch one batched message per worker).
    ``None`` (the default) keeps the historical routing:
    ``storage_dir`` set implies ``memmap``, otherwise ``ram``.  Results
    are bit-identical across all three.
    """

    slice_bits: int = 64
    array_bytes: int = 16 * 2**20
    policy: ReplacementPolicy | str = ReplacementPolicy.LRU
    orientation: str = "upper"
    seed: int = 0
    engine: str = "vectorized"
    num_arrays: int = 1
    shard_by: str = "edges"
    workers: int = 0
    use_plan: bool = True
    storage_dir: str | None = None
    spill_threshold_bytes: int | None = None
    backing: str | None = None

    def __post_init__(self) -> None:
        if self.backing not in (None, "ram", "memmap", "shm"):
            raise ArchitectureError(
                f"backing must be 'ram', 'memmap', 'shm' or unset, "
                f"got {self.backing!r}"
            )

    @property
    def slice_bytes(self) -> int:
        """Bytes occupied by one slice in the array."""
        return self.slice_bits // 8

    @property
    def capacity_slices(self) -> int:
        """Total slices the computational array can hold."""
        return self.array_bytes // self.slice_bytes

    #: Fields coerced through ``int()`` by :meth:`from_mapping` (config
    #: files and ``--set key=value`` overrides arrive as strings).
    _INT_FIELDS = ("slice_bits", "array_bytes", "seed", "num_arrays", "workers")
    #: Boolean fields, accepting true/false/1/0/yes/no strings.
    _BOOL_FIELDS = ("use_plan",)
    #: Optional fields: ``None`` (or the strings ""/"none"/"null") stays
    #: ``None``; anything else coerces to the named base type.
    _OPTIONAL_FIELDS = {
        "storage_dir": str,
        "spill_threshold_bytes": int,
        "backing": str,
    }

    @classmethod
    def from_mapping(
        cls, mapping: Mapping | None = None, **overrides
    ) -> "AcceleratorConfig":
        """Build a config from a plain mapping (TOML/JSON file, CLI ``--set``).

        Keys must name config fields; unknown keys raise
        :class:`~repro.errors.ArchitectureError` (typos fail loudly rather
        than silently running the default).  Values are coerced to the
        field's type — integer fields accept numeric strings, the rest are
        taken as strings — so a parsed config file and a ``key=value``
        override line feed through the same path.  ``overrides`` win over
        ``mapping``.
        """
        data: dict = {}
        if mapping:
            data.update(mapping)
        data.update(overrides)
        known = [f.name for f in fields(cls)]
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ArchitectureError(
                f"unknown AcceleratorConfig keys {unknown}; known keys: {known}"
            )
        return cls(
            **{name: cls._coerce_field(name, value) for name, value in data.items()}
        )

    @classmethod
    def _coerce_field(cls, name: str, value):
        if name in cls._OPTIONAL_FIELDS:
            if value is None or str(value).strip().lower() in ("", "none", "null"):
                return None
            base = cls._OPTIONAL_FIELDS[name]
            try:
                return base(value)
            except (TypeError, ValueError):
                raise ArchitectureError(
                    f"config field {name!r} needs a {base.__name__} or none, "
                    f"got {value!r}"
                ) from None
        if name in cls._INT_FIELDS:
            try:
                return int(value)
            except (TypeError, ValueError):
                raise ArchitectureError(
                    f"config field {name!r} needs an integer, got {value!r}"
                ) from None
        if name in cls._BOOL_FIELDS:
            if isinstance(value, bool):
                return value
            text = str(value).strip().lower()
            if text in ("true", "1", "yes", "on"):
                return True
            if text in ("false", "0", "no", "off"):
                return False
            raise ArchitectureError(
                f"config field {name!r} needs a boolean, got {value!r}"
            )
        if name == "policy":
            return value if isinstance(value, ReplacementPolicy) else str(value)
        return str(value)

    def to_mapping(self) -> dict:
        """The inverse of :meth:`from_mapping`: plain JSON/TOML-able values."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        policy = data["policy"]
        data["policy"] = (
            policy.value if isinstance(policy, ReplacementPolicy) else str(policy)
        )
        return data


@dataclass
class EventCounts:
    """Hardware-visible events of one run, consumed by the perf model."""

    #: Row slices written into the row region (once per processed row).
    row_slice_writes: int = 0
    #: Column slices written (cache misses + exchanges).
    col_slice_writes: int = 0
    #: Column-slice accesses served from the array without a write.
    col_slice_hits: int = 0
    #: In-array AND activations (one per valid slice pair).
    and_operations: int = 0
    #: Bit-counter invocations (one per AND, Fig. 2 dataflow).
    bitcount_operations: int = 0
    #: Valid-slice-index lookups in the data buffer (one per edge).
    index_lookups: int = 0
    #: Edges of the oriented matrix iterated.
    edges_processed: int = 0
    #: Slice pairs an un-sliced design would process (for the reduction claim).
    dense_pair_operations: int = 0

    @property
    def total_slice_writes(self) -> int:
        """All array WRITE operations (rows + columns)."""
        return self.row_slice_writes + self.col_slice_writes

    @property
    def writes_without_reuse(self) -> int:
        """WRITEs a reuse-less design would issue (row + one per access)."""
        return self.row_slice_writes + self.col_slice_hits + self.col_slice_writes

    @property
    def write_savings_percent(self) -> float:
        """Column-slice WRITEs avoided by data reuse (paper: 72 % average).

        Row slices are written exactly once per row whether or not a reuse
        strategy exists, so the saving the paper attributes to data reuse
        is the *column* hit rate — consistent with
        :attr:`CacheStatistics.write_savings_percent`.  (An earlier version
        diluted this by counting the unavoidable row writes in both the
        baseline and the total; :attr:`total_write_savings_percent` keeps
        that whole-run figure under its own name.)
        """
        accesses = self.col_slice_hits + self.col_slice_writes
        if not accesses:
            return 0.0
        return 100.0 * self.col_slice_hits / accesses

    @property
    def total_write_savings_percent(self) -> float:
        """All-WRITE saving including the unavoidable row-slice writes."""
        baseline = self.writes_without_reuse
        if not baseline:
            return 0.0
        return 100.0 * (baseline - self.total_slice_writes) / baseline

    @property
    def computation_reduction_percent(self) -> float:
        """Slice-pair work avoided by slicing (paper: 99.99 % average)."""
        if not self.dense_pair_operations:
            return 0.0
        return 100.0 * (1.0 - self.and_operations / self.dense_pair_operations)

    def merge(self, other: "EventCounts") -> "EventCounts":
        """Field-wise sum — aggregating shards or independent runs.

        Mirrors :meth:`CacheStatistics.merge`.  Every field is an additive
        event counter, so merging the per-shard counts of a sharded run
        reconstructs the totals the hardware would observe (row-slice
        writes may legitimately exceed the single-array total when a
        partitioner splits a row's edges across arrays — each array loads
        the row once).
        """
        if not isinstance(other, EventCounts):
            raise TypeError(f"cannot merge EventCounts with {type(other).__name__}")
        return EventCounts(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __add__(self, other: "EventCounts") -> "EventCounts":
        if not isinstance(other, EventCounts):
            return NotImplemented
        return self.merge(other)


@dataclass
class TCIMRunResult:
    """Everything produced by one accelerator run."""

    triangles: int
    events: EventCounts
    cache_stats: CacheStatistics
    slice_stats: SliceStatistics
    config: AcceleratorConfig
    #: Slices reserved for the row region (max valid slices of any row; for
    #: sharded runs, the largest row region of any shard).
    row_region_slices: int = 0
    #: Column-cache capacity in slices after the row-region reservation
    #: (for sharded runs, the tightest column cache of any shard).
    column_cache_slices: int = 0
    #: Per-shard breakdown (:class:`~repro.core.sharding.ShardResult`)
    #: when ``config.num_arrays > 1``; empty for single-array runs.
    shards: list = field(default_factory=list)
    notes: dict = field(default_factory=dict)


class TCIMAccelerator:
    """Functional + statistical simulator of the TCIM dataflow.

    Usage::

        accelerator = TCIMAccelerator()
        result = accelerator.run(graph)
        print(result.triangles, result.events.write_savings_percent)

    The run is exact (the returned ``triangles`` equals the true count) and
    deterministic for a given configuration.
    """

    def __init__(self, config: AcceleratorConfig | None = None) -> None:
        self.config = config or AcceleratorConfig()
        if self.config.slice_bits <= 0 or self.config.slice_bits % 8:
            raise ArchitectureError(
                f"slice_bits must be a positive multiple of 8, got {self.config.slice_bits}"
            )
        if self.config.capacity_slices < 2:
            raise ArchitectureError(
                f"array of {self.config.array_bytes} bytes cannot hold two "
                f"slices of {self.config.slice_bytes} bytes"
            )
        from repro.core.sharding import PARTITIONERS

        if self.config.engine not in registry.engine_names():
            raise ArchitectureError(
                f"engine must be one of {registry.engine_names()}, "
                f"got {self.config.engine!r}"
            )
        if self.config.num_arrays < 1:
            raise ArchitectureError(
                f"num_arrays must be >= 1, got {self.config.num_arrays}"
            )
        if self.config.shard_by not in PARTITIONERS:
            raise ArchitectureError(
                f"shard_by must be one of {PARTITIONERS}, "
                f"got {self.config.shard_by!r}"
            )
        if self.config.workers < 0:
            raise ArchitectureError(
                f"workers must be >= 0, got {self.config.workers}"
            )
        if self.config.num_arrays > 1 and self.config.engine != "vectorized":
            raise ArchitectureError(
                "sharded execution (num_arrays > 1) requires the "
                f"vectorized engine, got engine={self.config.engine!r}"
            )

    def run(
        self,
        graph: Graph,
        *,
        row_sliced: SlicedMatrix | None = None,
        col_sliced: SlicedMatrix | None = None,
        edge_arrays: tuple[np.ndarray, np.ndarray] | None = None,
        plan=None,
        join_plan=None,
        shard_contexts=None,
        context_pool=None,
    ) -> TCIMRunResult:
        """Execute Algorithm 1 on ``graph`` and collect all statistics.

        The keyword arguments let a caller that already holds the sliced
        structures, the oriented edge list, or the shard plan (notably
        :class:`repro.api.TCIMSession`, which keeps them resident across
        queries the way the Fig. 4 controller keeps the compressed graph
        in the array) skip the rebuild; omitted pieces are built here as
        before.  Passed structures must match the config's ``slice_bits``
        and the graph's vertex count.

        ``join_plan`` additionally passes a compiled
        :class:`repro.core.plan.JoinPlan` for the oriented edge list
        against exactly these slice structures: the vectorized engine
        then skips candidate expansion and the merge-join per query
        (sharded runs slice per-array sub-plans out of it).  Requires
        the vectorized engine; results are bit-identical with or
        without it.

        ``shard_contexts`` passes resident self-contained coloring
        shards (:func:`repro.core.sharding.build_shard_contexts`); with
        ``shard_by="coloring"`` and no contexts they are built here.
        The context path ignores ``plan``/``join_plan`` — each lane
        owns its own compiled plan — and records the coloring metadata
        (colors, shard count, partitioner balance, the
        communication-free flag) in :attr:`TCIMRunResult.notes`.
        ``context_pool`` additionally passes a live
        :class:`repro.core.sharding.ContextPool` holding those contexts
        resident in its workers — the sweep then dispatches through the
        pool (zero-copy under shm backing) instead of spawning
        processes per call.
        """
        config = self.config
        orientation = config.orientation
        if orientation not in ("upper", "symmetric"):
            raise ArchitectureError(
                f"orientation must be 'upper' or 'symmetric', got {orientation!r}"
            )
        col_orientation = "lower" if orientation == "upper" else "symmetric"
        if row_sliced is None:
            row_sliced = SlicedMatrix.from_graph(
                graph, orientation, slice_bits=config.slice_bits
            )
        if col_sliced is None:
            col_sliced = SlicedMatrix.from_graph(
                graph, col_orientation, slice_bits=config.slice_bits
            )
        for name, sliced in (("row_sliced", row_sliced), ("col_sliced", col_sliced)):
            if sliced.slice_bits != config.slice_bits:
                raise ArchitectureError(
                    f"{name} uses {sliced.slice_bits}-bit slices but the "
                    f"config asks for {config.slice_bits}"
                )
            if sliced.num_rows != graph.num_vertices:
                raise ArchitectureError(
                    f"{name} covers {sliced.num_rows} rows but the graph has "
                    f"{graph.num_vertices} vertices"
                )
        if join_plan is not None and config.engine != "vectorized":
            raise ArchitectureError(
                "join plans require the vectorized engine, "
                f"got engine={config.engine!r}"
            )
        shards: list = []
        notes: dict = {}
        use_contexts = (
            shard_contexts is not None
            or context_pool is not None
            or (config.num_arrays > 1 and config.shard_by == "coloring")
        )
        if use_contexts:
            accumulator, events, cache_stats, shards, notes = self._run_contexts(
                graph,
                edge_arrays=edge_arrays,
                shard_contexts=shard_contexts,
                context_pool=context_pool,
            )
            row_region = max((s.row_region_slices for s in shards), default=0)
            column_capacity = min(
                (s.column_cache_slices for s in shards),
                default=config.capacity_slices,
            )
        elif config.num_arrays > 1:
            accumulator, events, cache_stats, shards = self._run_sharded(
                graph, row_sliced, col_sliced,
                edge_arrays=edge_arrays, plan=plan, join_plan=join_plan,
            )
            row_region = max((s.row_region_slices for s in shards), default=0)
            column_capacity = min(
                (s.column_cache_slices for s in shards),
                default=config.capacity_slices,
            )
        else:
            row_region = int(row_sliced.row_valid_counts().max(initial=0))
            column_capacity = config.capacity_slices - row_region
            if column_capacity < 1:
                raise ArchitectureError(
                    f"array too small: row region needs {row_region} slices but "
                    f"capacity is {config.capacity_slices}"
                )
            if join_plan is not None:
                # The planned fast path is an execution strategy of the
                # built-in vectorized kernel, not a separate engine, so
                # it bypasses the registry indirection.
                accumulator, events, cache_stats = self._run_vectorized(
                    graph, row_sliced, col_sliced, column_capacity,
                    join_plan=join_plan,
                )
            else:
                kernel = registry.engine_kernel(config.engine)
                accumulator, events, cache_stats = kernel(
                    self, graph, row_sliced, col_sliced, column_capacity
                )
        triangles = accumulator if orientation == "upper" else accumulator // 6
        stats = slice_statistics(
            graph,
            slice_bits=config.slice_bits,
            orientation=orientation,
            row_sliced=row_sliced,
            col_sliced=col_sliced,
        )
        return TCIMRunResult(
            triangles=triangles,
            events=events,
            cache_stats=cache_stats,
            slice_stats=stats,
            config=config,
            row_region_slices=row_region,
            column_cache_slices=column_capacity,
            shards=shards,
            notes=notes,
        )

    def _run_contexts(
        self,
        graph: Graph,
        edge_arrays: tuple[np.ndarray, np.ndarray] | None = None,
        shard_contexts=None,
        context_pool=None,
    ) -> tuple[int, EventCounts, CacheStatistics, list, dict]:
        """Communication-free coloring dataflow over self-contained shards."""
        from repro.core.sharding import (
            build_shard_contexts,
            context_balance,
            execute_contexts,
        )

        config = self.config
        if context_pool is not None:
            outcome = context_pool.run(use_plan=bool(config.use_plan))
            if shard_contexts is None:
                shard_contexts = context_pool._contexts
        else:
            if shard_contexts is None:
                shard_contexts = build_shard_contexts(
                    graph,
                    config.orientation,
                    config.num_arrays,
                    slice_bits=config.slice_bits,
                    seed=config.seed,
                    edge_arrays=edge_arrays,
                    use_plan=config.use_plan,
                )
            outcome = execute_contexts(
                shard_contexts,
                config.capacity_slices,
                policy=config.policy,
                seed=config.seed,
                workers=config.workers,
                use_plan=config.use_plan,
                backing="shm" if config.backing == "shm" else "pickle",
            )
        first = shard_contexts[0]
        notes = {
            "shard_by": "coloring",
            "colors": first.colors,
            "num_shards": len(shard_contexts),
            "communication_free": True,
            "balance": context_balance(shard_contexts),
        }
        if context_pool is not None:
            notes["pool_backing"] = context_pool.backing
            notes["pool_workers"] = context_pool.workers
        elif config.workers > 0 and config.backing == "shm":
            notes["pool_backing"] = "shm"
        return (
            outcome.accumulator,
            outcome.events,
            outcome.cache_stats,
            outcome.shards,
            notes,
        )

    def _run_vectorized(
        self,
        graph: Graph,
        row_sliced: SlicedMatrix,
        col_sliced: SlicedMatrix,
        column_capacity: int,
        join_plan=None,
    ) -> tuple[int, EventCounts, CacheStatistics]:
        """Batched numpy dataflow (see :mod:`repro.core.engine`)."""
        from repro.core.engine import execute_batched

        accumulator, fields, cache_stats = execute_batched(
            graph,
            row_sliced,
            col_sliced,
            self.config.orientation,
            column_capacity,
            policy=self.config.policy,
            seed=self.config.seed,
            plan=join_plan,
        )
        return accumulator, EventCounts(**fields), cache_stats

    def _run_sharded(
        self,
        graph: Graph,
        row_sliced: SlicedMatrix,
        col_sliced: SlicedMatrix,
        edge_arrays: tuple[np.ndarray, np.ndarray] | None = None,
        plan=None,
        join_plan=None,
    ) -> tuple[int, EventCounts, CacheStatistics, list]:
        """Multi-array dataflow (see :mod:`repro.core.sharding`)."""
        from repro.core.engine import oriented_edges
        from repro.core.sharding import execute_sharded, plan_shards

        config = self.config
        # Materialise the oriented edge list once; the planner and the
        # orchestrator both consume it.  A caller holding both (the
        # session) passes them in and nothing is rebuilt.
        if edge_arrays is None:
            sources, destinations = oriented_edges(graph, config.orientation)
        else:
            sources, destinations = edge_arrays
        if plan is None:
            plan = plan_shards(
                graph,
                config.orientation,
                config.num_arrays,
                config.shard_by,
                sources=sources,
            )
        elif plan.num_arrays != config.num_arrays:
            raise ArchitectureError(
                f"plan covers {plan.num_arrays} arrays but the config asks "
                f"for {config.num_arrays}; rebuild the plan with plan_shards"
            )
        outcome = execute_sharded(
            graph,
            row_sliced,
            col_sliced,
            config.orientation,
            plan,
            config.capacity_slices,
            policy=config.policy,
            seed=config.seed,
            workers=config.workers,
            edge_arrays=(sources, destinations),
            join_plan=join_plan,
        )
        return (
            outcome.accumulator,
            outcome.events,
            outcome.cache_stats,
            outcome.shards,
        )

    def _run_legacy(
        self,
        graph: Graph,
        row_sliced: SlicedMatrix,
        col_sliced: SlicedMatrix,
        column_capacity: int,
    ) -> tuple[int, EventCounts, CacheStatistics]:
        """Original per-edge Python loop — the differential-testing oracle."""
        config = self.config
        orientation = config.orientation
        cache = SliceCache(column_capacity, policy=config.policy, seed=config.seed)
        events = EventCounts()
        accumulator = 0
        slices_per_row = row_sliced.slices_per_row
        indptr, indices = graph.csr
        for row in range(graph.num_vertices):
            neighbours = indices[indptr[row]: indptr[row + 1]]
            if orientation == "upper":
                successors = neighbours[neighbours > row]
            else:
                successors = neighbours
            if successors.size == 0:
                continue
            row_ids, row_data = row_sliced.row_slices(row)
            # The row is loaded once and overwrites the previous row
            # (Section IV-A), so each valid row slice costs one WRITE.
            events.row_slice_writes += int(row_ids.size)
            events.edges_processed += int(successors.size)
            events.dense_pair_operations += int(successors.size) * slices_per_row
            for column in successors.tolist():
                events.index_lookups += 1
                col_ids, col_data = col_sliced.row_slices(column)
                if col_ids.size == 0 or row_ids.size == 0:
                    continue
                row_pos, col_pos = valid_pair_positions(row_ids, col_ids)
                if row_pos.size == 0:
                    continue
                for matched in col_pos.tolist():
                    cache.access((column, int(col_ids[matched])))
                conj = row_data[row_pos] & col_data[col_pos]
                accumulator += int(np.bitwise_count(conj).sum())
                events.and_operations += int(row_pos.size)
                events.bitcount_operations += int(row_pos.size)
        events.col_slice_writes = cache.stats.writes
        events.col_slice_hits = cache.stats.hits
        return accumulator, events, cache.stats


def _vectorized_kernel(accelerator, graph, row_sliced, col_sliced, column_capacity):
    """Registry adapter for the batched numpy engine."""
    return accelerator._run_vectorized(graph, row_sliced, col_sliced, column_capacity)


def _legacy_kernel(accelerator, graph, row_sliced, col_sliced, column_capacity):
    """Registry adapter for the per-edge oracle loop."""
    return accelerator._run_legacy(graph, row_sliced, col_sliced, column_capacity)


# Engine dispatch goes through the registry (repro/registry.py) so new
# backends plug in without touching this module; the built-ins register
# here, once, at import time.
registry.register_engine("vectorized", _vectorized_kernel, replace=True)
registry.register_engine("legacy", _legacy_kernel, replace=True)
