"""Dynamic (incremental) triangle counting.

Real deployments stream edges; recounting from scratch per update wastes
exactly the bandwidth TCIM is built to save.  This extension maintains the
triangle count under edge insertions and deletions using the same
common-neighbour primitive as the bitwise method: inserting ``{u, v}``
adds ``|N(u) & N(v)|`` triangles, deleting removes the same amount.

The counter keeps adjacency sets (so updates are O(min degree)) and is
validated against full recounts in the test-suite.  ``to_graph()``
snapshots the current state for handoff to the TCIM accelerator.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graph.graph import Graph

__all__ = ["DynamicTriangleCounter", "OP_CODES", "parse_op"]

#: Accepted operation codes for op streams, shared by the oracle and the
#: session's incremental fast path (:mod:`repro.api`) so both fronts
#: accept exactly the same streams.
OP_CODES = {
    "+": "insert",
    "insert": "insert",
    "-": "delete",
    "delete": "delete",
}


def parse_op(op, index: int) -> tuple[str, int, int]:
    """Validate one stream entry; returns ``(action, u, v)``.

    ``action`` is ``"insert"`` or ``"delete"``; malformed triples and
    unknown codes raise :class:`GraphError` naming the offending index.
    """
    try:
        code, u, v = op
    except (TypeError, ValueError):
        raise GraphError(
            f"op {index} must be an (op, u, v) triple, got {op!r}"
        ) from None
    try:
        action = OP_CODES[code]
    except (KeyError, TypeError):
        raise GraphError(
            f"op {index}: unknown operation {code!r}; "
            "expected '+'/'insert' or '-'/'delete'"
        ) from None
    return action, u, v


class DynamicTriangleCounter:
    """Exact triangle count maintained under edge insertions/deletions.

    >>> counter = DynamicTriangleCounter(3)
    >>> counter.insert(0, 1); counter.insert(1, 2); counter.insert(0, 2)
    0
    0
    1
    >>> counter.triangles
    1
    """

    def __init__(self, num_vertices: int, graph: Graph | None = None) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be non-negative, got {num_vertices}")
        self._num_vertices = num_vertices
        self._adjacency: list[set[int]] = [set() for _ in range(num_vertices)]
        self._num_edges = 0
        self._triangles = 0
        if graph is not None:
            if graph.num_vertices > num_vertices:
                raise GraphError(
                    f"seed graph has {graph.num_vertices} vertices but the "
                    f"counter only {num_vertices}"
                )
            for u, v in graph.edges():
                self.insert(u, v)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Current number of edges."""
        return self._num_edges

    @property
    def triangles(self) -> int:
        """Current exact triangle count."""
        return self._triangles

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is currently present."""
        self._check(u)
        self._check(v)
        return v in self._adjacency[u]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, u: int, v: int) -> int:
        """Insert edge ``{u, v}``; returns the triangles it closed.

        Inserting an existing edge or a self-loop is a no-op returning 0.
        """
        self._check(u)
        self._check(v)
        if u == v or v in self._adjacency[u]:
            return 0
        closed = self._common_count(u, v)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._num_edges += 1
        self._triangles += closed
        return closed

    def delete(self, u: int, v: int) -> int:
        """Delete edge ``{u, v}``; returns the triangles it opened.

        Deleting a missing edge is a no-op returning 0.
        """
        self._check(u)
        self._check(v)
        if u == v or v not in self._adjacency[u]:
            return 0
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        opened = self._common_count(u, v)
        self._num_edges -= 1
        self._triangles -= opened
        return opened

    def apply(self, insertions=(), deletions=(), record: bool = False):
        """Apply a two-list batch of updates; returns the net triangle delta.

        **Ordering semantics**: *all* insertions are applied first, then
        *all* deletions — regardless of how the caller interleaved the
        operations before splitting them into the two lists.  Inserting
        and deleting the same edge in one batch therefore nets to the
        edge being absent.  When the relative order of mixed operations
        matters (e.g. delete ``{u, v}`` *then* re-insert it), use
        :meth:`apply_ops`, which consumes a single ordered stream.

        With ``record=True`` the return value is ``(net, deltas)`` where
        ``deltas`` holds the *signed* per-operation triangle delta in
        application order (insertions first, then deletions; no-ops
        record 0) — the hook the differential tests use to cross-check
        an incremental engine op by op.
        """
        before = self._triangles
        deltas: list[int] = []
        for u, v in insertions:
            deltas.append(self.insert(u, v))
        for u, v in deletions:
            deltas.append(-self.delete(u, v))
        net = self._triangles - before
        return (net, deltas) if record else net

    #: Accepted operation codes for :meth:`apply_ops` (kept as a class
    #: attribute for backwards compatibility; :data:`OP_CODES` is the
    #: shared source of truth).
    _OP_CODES = OP_CODES

    def apply_ops(self, ops, record: bool = False):
        """Apply one ordered stream of updates; returns the net delta.

        ``ops`` is an iterable of ``(op, u, v)`` triples where ``op`` is
        ``"+"``/``"insert"`` or ``"-"``/``"delete"``.  Operations are
        applied exactly in the given order, so
        ``[("+", u, v), ("-", u, v)]`` ends with the edge absent while
        ``[("-", u, v), ("+", u, v)]`` ends with it present — the
        distinction :meth:`apply`'s two-list form cannot express.

        With ``record=True`` the return value is ``(net, deltas)`` where
        ``deltas[i]`` is the signed triangle delta of ``ops[i]`` (0 for
        no-ops) — so an incremental engine can be cross-checked against
        this oracle operation by operation, not just on the net total.

        >>> counter = DynamicTriangleCounter(3)
        >>> counter.apply_ops([("+", 0, 1), ("+", 1, 2), ("+", 0, 2),
        ...                    ("-", 0, 1)])
        0
        >>> counter.apply_ops([("+", 0, 1)])
        1
        >>> counter.apply_ops([("-", 0, 1), ("+", 0, 1)], record=True)
        (0, [-1, 1])
        """
        before = self._triangles
        deltas: list[int] = []
        for index, op in enumerate(ops):
            action, u, v = parse_op(op, index)
            if action == "insert":
                deltas.append(self.insert(u, v))
            else:
                deltas.append(-self.delete(u, v))
        net = self._triangles - before
        return (net, deltas) if record else net

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_graph(self) -> Graph:
        """Snapshot the current edge set as an immutable :class:`Graph`."""
        edges = [
            (u, v)
            for u in range(self._num_vertices)
            for v in self._adjacency[u]
            if u < v
        ]
        return Graph(self._num_vertices, edges)

    def _common_count(self, u: int, v: int) -> int:
        first, second = self._adjacency[u], self._adjacency[v]
        if len(second) < len(first):
            first, second = second, first
        return sum(1 for w in first if w in second)

    def _check(self, vertex: int) -> None:
        if not 0 <= vertex < self._num_vertices:
            raise GraphError(
                f"vertex {vertex} out of range [0, {self._num_vertices})"
            )
