"""Generic bulk-bitwise subgraph kernels over the shared join machinery.

TCIM's core primitive is not "triangles" — it is bulk bitwise AND →
popcount over sliced adjacency rows.  The journal extension of the paper
generalises the architecture beyond triangle counting, and every kernel
of that family consumes the *same* joined (row, col) slice-pair
positions; only the reduction differs:

* **triangle counting** sums every pair popcount into one scalar
  accumulator (the paper's pipelined bit counter);
* **edge support** (k-truss seeding, common-neighbour scores) reduces
  the pair popcounts *per oriented edge* — over the symmetric
  orientation each directed edge's popcount is ``|N(u) ∩ N(v)|``;
* **per-vertex tallies** (clustering coefficients) further reduce the
  per-edge supports onto their source vertices.

:func:`execute_workload` is the one executor behind all of them: the
generalisation of the batched triangle dataflow
(:func:`repro.core.engine.execute_batched` now delegates here) that can
additionally materialise per-edge popcount sums.  It shares
:func:`repro.core.engine.join_batches` and the resident
:class:`repro.core.plan.JoinPlan` fast path, so the compiled valid-pair
index — and its incremental patching — serves *every* workload, not
just triangle counts.  Events and cache statistics are identical to the
counting path field by field: the array executes the same gathers, ANDs
and popcounts regardless of how the host reduces them.

A :class:`BitwiseKernel` is deliberately small: a flag saying whether
per-edge popcount sums must be materialised, plus a ``finalize`` that
turns ``(accumulator, per_edge, sources, destinations)`` into the
workload's value.  The executor owns all the heavy machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import engine
from repro.core.reuse import CacheStatistics, simulate_key_trace
from repro.core.slicing import SlicedMatrix
from repro.errors import ArchitectureError
from repro.graph.graph import Graph

__all__ = [
    "BitwiseKernel",
    "CountKernel",
    "EdgeSupportKernel",
    "FusedSegment",
    "VertexTallyKernel",
    "WorkloadResult",
    "execute_fused",
    "execute_workload",
    "vertex_tallies_from_supports",
]

#: Physically stack the payloads only while the fused gather volume
#: amortises the copy; below this pairs-per-payload-row ratio the sweep
#: gathers segment-locally into the shared output instead (identical
#: results — the stack is an execution detail, not a semantic one).
FUSED_STACK_MAX_ROWS_PER_PAIR = 2


def vertex_tallies_from_supports(
    sources: np.ndarray, supports: np.ndarray, num_vertices: int
) -> np.ndarray:
    """Per-vertex triangle counts from per-*directed*-edge supports.

    Over the symmetric orientation, each triangle ``{u, v, w}`` at vertex
    ``u`` contributes 1 to the support of both directed edges ``(u, v)``
    and ``(u, w)``, so the per-source sum double-counts triangles:
    ``t(u) = sum(support(u, ·)) / 2``.  Exact in int64 (the float64
    bincount weights are whole numbers far below 2**53).
    """
    summed = np.bincount(
        sources, weights=supports.astype(np.float64), minlength=num_vertices
    )
    return np.rint(summed).astype(np.int64) // 2


class BitwiseKernel:
    """One workload of the gather → AND → popcount family.

    ``per_edge`` tells :func:`execute_workload` whether per-edge popcount
    sums must be materialised (the counting fast path keeps a scalar
    accumulator and never allocates them).  ``finalize`` receives the
    scalar ``accumulator``, the per-edge int64 array (``None`` unless
    ``per_edge``), and the oriented edge arrays, and returns the
    workload's value.
    """

    name = "bitwise"
    per_edge = False

    def finalize(self, accumulator, per_edge, sources, destinations):
        raise NotImplementedError


class CountKernel(BitwiseKernel):
    """Triangle counting: the raw popcount accumulator (pre orientation
    division, exactly what :func:`repro.core.engine.execute_batched`
    returns)."""

    name = "count"
    per_edge = False

    def finalize(self, accumulator, per_edge, sources, destinations):
        return accumulator


class EdgeSupportKernel(BitwiseKernel):
    """Per-oriented-edge popcount sums.

    Over the *symmetric* orientation the value of directed edge
    ``(u, v)`` is ``|N(u) ∩ N(v)|`` — the triangle support of the
    undirected edge ``{u, v}``, and the common-neighbour score of the
    (not necessarily linked) pair.  Over the ``"upper"`` orientation it
    is the oriented successor intersection, whose sum is the triangle
    count.
    """

    name = "support"
    per_edge = True

    def finalize(self, accumulator, per_edge, sources, destinations):
        return per_edge


class VertexTallyKernel(BitwiseKernel):
    """Per-vertex triangle tallies (clustering-coefficient numerators).

    Requires the full symmetric oriented edge list — the per-source
    reduction halves the double count each triangle leaves on its
    corner's two directed edges (see
    :func:`vertex_tallies_from_supports`).
    """

    name = "tally"
    per_edge = True

    def __init__(self, num_vertices: int) -> None:
        self.num_vertices = int(num_vertices)

    def finalize(self, accumulator, per_edge, sources, destinations):
        return vertex_tallies_from_supports(sources, per_edge, self.num_vertices)


@dataclass
class WorkloadResult:
    """Outcome of one :func:`execute_workload` run.

    ``value`` is whatever the kernel's ``finalize`` produced;
    ``accumulator`` is always the raw popcount sum (pre orientation
    division), and ``events``/``cache_stats`` match the counting
    executor field by field.
    """

    value: object
    accumulator: int
    events: dict
    cache_stats: CacheStatistics


def execute_workload(
    kernel: BitwiseKernel,
    graph: Graph | None,
    row_sliced: SlicedMatrix,
    col_sliced: SlicedMatrix,
    orientation: str,
    column_capacity: int,
    policy,
    seed: int,
    batch_candidates: int = engine.DEFAULT_BATCH_CANDIDATES,
    edges: tuple[np.ndarray, np.ndarray] | None = None,
    row_writes: int | None = None,
    plan=None,
) -> WorkloadResult:
    """Run one bulk-bitwise workload over the shared dataflow.

    The argument surface matches :func:`repro.core.engine.execute_batched`
    (which is now a thin :class:`CountKernel` delegation to this
    function) plus the ``kernel``.  ``plan`` passes a resident
    :class:`repro.core.plan.JoinPlan` compiled against these structures
    and this edge list: the merge-join is skipped and per-edge reductions
    run over the plan's ``pair_counts`` runs — so the one compiled
    valid-pair index serves every workload.  All paths (planned or not,
    whole-list or one shard's ``edges``) produce identical values, events
    and cache statistics.
    """
    if orientation not in ("upper", "symmetric"):
        raise ArchitectureError(
            f"orientation must be 'upper' or 'symmetric', got {orientation!r}"
        )
    if batch_candidates < 1:
        batch_candidates = 1
    if plan is not None:
        if edges is None and graph is not None:
            # The oriented edge count is known without materialising the
            # list; a plan compiled for a different edge list must not be
            # trusted for its event accounting (mirrors the sharded
            # orchestrator's check).
            expected = (
                graph.num_edges
                if orientation == "upper"
                else 2 * graph.num_edges
            )
            if plan.num_edges != expected:
                raise ArchitectureError(
                    f"join plan covers {plan.num_edges} edges but the "
                    f"oriented graph has {expected}; compile a plan for "
                    "this edge list"
                )
        return _execute_planned(
            kernel, row_sliced, col_sliced, column_capacity, policy, seed,
            plan, edges=edges, row_writes=row_writes,
        )
    if edges is None:
        sources, destinations = engine.oriented_edges(graph, orientation)
        # Rows without successors carry no valid slices, so the per-row sum
        # of the legacy loop equals the total valid-slice count.
        row_writes = row_sliced.num_valid_slices
    else:
        sources, destinations = edges
        sources = np.asarray(sources, dtype=np.int64)
        destinations = np.asarray(destinations, dtype=np.int64)
        if row_writes is None:
            # A shard loads only the rows it owns edges for, once each.
            _, touched_counts = row_sliced.row_slice_ranges(np.unique(sources))
            row_writes = int(touched_counts.sum())
    num_edges = int(sources.size)
    events = engine._base_events(num_edges, row_sliced.slices_per_row, row_writes)
    # The cache key of a column-slice access is exactly that slice's global
    # key in the column structure, whichever side was probed.
    col_global = col_sliced.global_keys()
    accumulator = 0
    matches = 0
    per_edge = np.zeros(num_edges, dtype=np.int64) if kernel.per_edge else None
    trace_parts: list[np.ndarray] = []
    workspace = engine._Workspace()
    for row_hit, col_hit, edge_ids in engine.join_batches(
        row_sliced, col_sliced, sources, destinations, batch_candidates,
        with_edge_ids=kernel.per_edge,
    ):
        if kernel.per_edge:
            pops = engine.pair_popcounts(
                row_sliced.data, col_sliced.data, row_hit, col_hit, workspace
            )
            accumulator += int(pops.sum())
            # Float64 bincount weights are exact here: every pair count
            # and partial sum is bounded far below 2**53.
            per_edge += np.bincount(
                edge_ids, weights=pops.astype(np.float64), minlength=num_edges
            ).astype(np.int64)
        else:
            accumulator += engine.pair_popcount(
                row_sliced.data, col_sliced.data, row_hit, col_hit, workspace
            )
        trace_parts.append(col_global[col_hit])
        matches += int(row_hit.size)
    events["and_operations"] = matches
    events["bitcount_operations"] = matches
    trace = (
        np.concatenate(trace_parts) if trace_parts else np.empty(0, dtype=np.int64)
    )
    cache_stats = simulate_key_trace(
        trace, column_capacity, policy=policy, seed=seed
    )
    events["col_slice_writes"] = cache_stats.writes
    events["col_slice_hits"] = cache_stats.hits
    return WorkloadResult(
        value=kernel.finalize(accumulator, per_edge, sources, destinations),
        accumulator=accumulator,
        events=events,
        cache_stats=cache_stats,
    )


def _execute_planned(
    kernel: BitwiseKernel,
    row_sliced: SlicedMatrix,
    col_sliced: SlicedMatrix,
    column_capacity: int,
    policy,
    seed: int,
    plan,
    edges: tuple[np.ndarray, np.ndarray] | None,
    row_writes: int | None,
) -> WorkloadResult:
    """The resident-plan fast path: gather → AND → popcount, nothing else."""
    stale = plan.staleness(row_sliced, col_sliced)
    if stale:
        raise ArchitectureError(f"stale join plan: {stale}; rebuild or patch it")
    sources = destinations = None
    if edges is None:
        num_edges = plan.num_edges
        row_writes = row_sliced.num_valid_slices
    else:
        sources = np.asarray(edges[0], dtype=np.int64)
        destinations = np.asarray(edges[1], dtype=np.int64)
        num_edges = int(sources.size)
        if num_edges != plan.num_edges:
            raise ArchitectureError(
                f"join plan covers {plan.num_edges} edges but the run "
                f"supplies {num_edges}; compile a plan for this edge list"
            )
        if row_writes is None:
            _, touched_counts = row_sliced.row_slice_ranges(np.unique(sources))
            row_writes = int(touched_counts.sum())
    events = engine._base_events(num_edges, row_sliced.slices_per_row, row_writes)
    per_edge = None
    if kernel.per_edge:
        pops = engine.pair_popcounts(
            row_sliced.data, col_sliced.data, plan.row_positions, plan.col_positions
        )
        # Reduce each edge's pair run via prefix sums: exact for runs of
        # any length, including the zero-pair edges np.add.reduceat
        # would mis-handle.
        prefix = np.zeros(pops.size + 1, dtype=np.int64)
        np.cumsum(pops, out=prefix[1:])
        bounds = plan.bounds
        per_edge = prefix[bounds[1:]] - prefix[bounds[:-1]]
        accumulator = int(prefix[-1])
    else:
        accumulator = engine.pair_popcount(
            row_sliced.data, col_sliced.data, plan.row_positions, plan.col_positions
        )
    matches = plan.num_pairs
    events["and_operations"] = matches
    events["bitcount_operations"] = matches
    cache_stats = plan.cache_statistics(column_capacity, policy, seed)
    events["col_slice_writes"] = cache_stats.writes
    events["col_slice_hits"] = cache_stats.hits
    return WorkloadResult(
        value=kernel.finalize(accumulator, per_edge, sources, destinations),
        accumulator=accumulator,
        events=events,
        cache_stats=cache_stats,
    )


# ----------------------------------------------------------------------
# Cross-session fusion
# ----------------------------------------------------------------------
@dataclass
class FusedSegment:
    """One session's share of a fused sweep.

    Pairs a resident (or ad-hoc) :class:`repro.core.plan.JoinPlan` with
    the payload arrays it was compiled against plus the event/cache
    parameters its lone run would have used, so the fused executor can
    reproduce that run's ``WorkloadResult`` field by field.
    """

    kernel: BitwiseKernel
    plan: object
    row_data: np.ndarray
    col_data: np.ndarray
    slices_per_row: int
    row_writes: int
    column_capacity: int
    policy: object
    seed: int
    sources: np.ndarray | None = None
    destinations: np.ndarray | None = None


def execute_fused(
    segments, force_stacked: bool | None = None
) -> list[WorkloadResult]:
    """Execute many sessions' workloads as **one** gather→AND→popcount sweep.

    The fusion scheduler's kernel: concatenates the segments' plans into
    one fused pair space (:func:`repro.core.plan.fuse_plans`), runs a
    single popcount pass over it, then splits the reductions back per
    segment.  Each returned :class:`WorkloadResult` is bit-identical —
    value, accumulator, events, cache statistics — to running that
    segment alone through :func:`execute_workload` with its plan.

    When the fused gather volume amortises the copy, the payloads are
    physically stacked (``np.concatenate`` of the uint8 payload views —
    lane widths must match, which the scheduler's grouping guarantees)
    and the offset-baked fused positions drive one
    :func:`repro.core.engine.pair_popcounts` call.  For sparse probe
    batches whose pair count is small against the resident payloads, the
    sweep gathers segment-locally into the shared output instead; both
    paths produce the same bits (``force_stacked`` pins one for tests).
    """
    from repro.core.plan import fuse_plans

    segments = list(segments)
    if not segments:
        return []
    width = segments[0].row_data.shape[1]
    for seg in segments:
        if seg.row_data.shape[1] != width or seg.col_data.shape[1] != width:
            raise ArchitectureError(
                "fused segments must share one slice width; group by "
                "lane-compatible configurations before fusing"
            )
        if seg.plan.row_valid_slices != seg.row_data.shape[0] or (
            seg.plan.col_valid_slices != seg.col_data.shape[0]
        ):
            raise ArchitectureError(
                "fused segment plan does not match its payload arrays; "
                "snapshot plan and payload under one lock"
            )
    fused = fuse_plans([seg.plan for seg in segments])
    total_pairs = fused.num_pairs
    stack_rows = sum(s.row_data.shape[0] + s.col_data.shape[0] for s in segments)
    if force_stacked is None:
        stacked = stack_rows <= FUSED_STACK_MAX_ROWS_PER_PAIR * total_pairs
    else:
        stacked = bool(force_stacked)
    if stacked and len(segments) > 1:
        row_stack = np.concatenate([s.row_data for s in segments])
        col_stack = np.concatenate([s.col_data for s in segments])
        pops = engine.pair_popcounts(
            row_stack, col_stack, fused.row_positions, fused.col_positions
        )
    elif stacked:
        seg = segments[0]
        pops = engine.pair_popcounts(
            seg.row_data, seg.col_data,
            seg.plan.row_positions, seg.plan.col_positions,
        )
    else:
        workspace = engine._Workspace()
        pops = np.empty(total_pairs, dtype=np.int64)
        for i, seg in enumerate(segments):
            pops[fused.segment_slice(i)] = engine.pair_popcounts(
                seg.row_data, seg.col_data,
                seg.plan.row_positions, seg.plan.col_positions,
                workspace,
            )
    prefix = np.zeros(total_pairs + 1, dtype=np.int64)
    np.cumsum(pops, out=prefix[1:])
    results: list[WorkloadResult] = []
    for i, seg in enumerate(segments):
        lo = int(fused.segment_bounds[i])
        hi = int(fused.segment_bounds[i + 1])
        accumulator = int(prefix[hi] - prefix[lo])
        per_edge = None
        if seg.kernel.per_edge:
            bounds = seg.plan.bounds + lo
            per_edge = prefix[bounds[1:]] - prefix[bounds[:-1]]
        events = engine._base_events(
            seg.plan.num_edges, seg.slices_per_row, seg.row_writes
        )
        events["and_operations"] = seg.plan.num_pairs
        events["bitcount_operations"] = seg.plan.num_pairs
        cache_stats = seg.plan.cache_statistics(
            seg.column_capacity, seg.policy, seg.seed
        )
        events["col_slice_writes"] = cache_stats.writes
        events["col_slice_hits"] = cache_stats.hits
        results.append(
            WorkloadResult(
                value=seg.kernel.finalize(
                    accumulator, per_edge, seg.sources, seg.destinations
                ),
                accumulator=accumulator,
                events=events,
                cache_stats=cache_stats,
            )
        )
    return results
