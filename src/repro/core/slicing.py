"""Sparsity-aware data slicing (paper Section IV-B).

Rows and columns of the adjacency matrix are cut into ``|S|``-bit slices
(the paper uses ``|S| = 64``).  A slice is **valid** iff it contains at
least one non-zero.  Only valid slices are stored, and only *valid slice
pairs* — positions where both the row slice ``R_i S_k`` and the column
slice ``C_j S_k`` are valid — are ever loaded into the computational array
and ANDed.  On the paper's large sparse graphs this eliminates 99.99 % of
the slice-pair work (Table IV) and compresses each graph to at most a few
tens of MB (Table III).

The compressed format stores, per valid slice, a 4-byte index plus
``|S|/8`` bytes of payload, i.e. ``N_VS x (|S|/8 + 4)`` bytes overall —
exactly the paper's memory-requirement formula.

:class:`SlicedMatrix` is a CSR-like container of valid slices, built fully
vectorised so million-edge graphs compress in well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SlicingError
from repro.graph import bitops
from repro.graph.graph import Graph

__all__ = [
    "SlicedMatrix",
    "SliceStatistics",
    "slice_statistics",
    "valid_pair_positions",
    "INDEX_BYTES",
]

#: Bytes used to store each valid-slice index in the compressed format
#: ("we use an integer (four Bytes) to store each valid slice index").
INDEX_BYTES = 4

_ORIENTATIONS = ("symmetric", "upper", "lower")


class SlicedMatrix:
    """Valid slices of a 0/1 matrix, stored row-major in CSR-of-slices form.

    Attributes
    ----------
    slice_bits:
        ``|S|`` — bits per slice.  Must be a positive multiple of 8.
    indptr:
        ``(num_rows + 1,)`` — CSR offsets into the valid-slice arrays.
    slice_ids:
        ``(N_VS,)`` — for each valid slice, its slice index ``k`` within
        the row (``0 <= k < slices_per_row``), ascending within a row.
    data:
        ``(N_VS, slice_bits // 8)`` uint8 — packed payload, little-endian
        bit order (bit ``t`` of slice ``k`` is column ``k * |S| + t``).
    """

    __slots__ = (
        "num_rows",
        "num_cols",
        "slice_bits",
        "indptr",
        "slice_ids",
        "data",
        "structure_version",
        "_keys_cache",
    )

    def __init__(
        self,
        num_rows: int,
        num_cols: int,
        slice_bits: int,
        indptr: np.ndarray,
        slice_ids: np.ndarray,
        data: np.ndarray,
    ) -> None:
        _check_slice_bits(slice_bits)
        if num_rows < 0 or num_cols < 0:
            raise SlicingError(f"negative matrix shape ({num_rows}, {num_cols})")
        if indptr.shape != (num_rows + 1,):
            raise SlicingError(
                f"indptr must have shape ({num_rows + 1},), got {indptr.shape}"
            )
        if data.ndim != 2 or data.shape[1] != slice_bits // 8:
            raise SlicingError(
                f"data must have shape (N_VS, {slice_bits // 8}), got {data.shape}"
            )
        if slice_ids.shape[0] != data.shape[0]:
            raise SlicingError(
                f"slice_ids ({slice_ids.shape[0]}) and data ({data.shape[0]}) disagree"
            )
        self.num_rows = int(num_rows)
        self.num_cols = int(num_cols)
        self.slice_bits = int(slice_bits)
        self.indptr = indptr
        self.slice_ids = slice_ids
        self.data = data
        #: Monotone counter of *structural* changes: bumped whenever the
        #: set of valid slices changes (a slice inserted or dropped), so
        #: positions into :attr:`slice_ids`/:attr:`data` from before the
        #: bump are invalid.  Payload-only mutation (setting/clearing
        #: bits inside an existing slice) does not bump it — positions
        #: and :meth:`global_keys` stay valid.  Derived artifacts (the
        #: keys cache here, :class:`repro.core.plan.JoinPlan` outside)
        #: key their coherence on this counter.
        self.structure_version = 0
        self._keys_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_nonzeros(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        num_rows: int,
        num_cols: int,
        slice_bits: int = 64,
        store=None,
    ) -> "SlicedMatrix":
        """Build from parallel arrays of non-zero coordinates.

        ``store`` (a :class:`repro.storage.backing.BackingStore`) decides
        where the slice payload lives: a ``memmap`` store spills the
        ``data`` array to disk once it crosses the spill threshold.  The
        small index arrays (``indptr``, ``slice_ids``) stay on heap —
        they are hot and tiny relative to the payload.
        """
        _check_slice_bits(slice_bits)
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise SlicingError(
                f"rows/cols must be matching 1-D arrays, got {rows.shape} vs {cols.shape}"
            )
        if rows.size:
            if rows.min() < 0 or rows.max() >= num_rows:
                raise SlicingError("row coordinate out of range")
            if cols.min() < 0 or cols.max() >= num_cols:
                raise SlicingError("column coordinate out of range")
        slices_per_row = _slices_per_row(num_cols, slice_bits)
        slice_of = cols // slice_bits
        keys = rows * np.int64(slices_per_row) + slice_of
        if keys.size and bool((keys[1:] >= keys[:-1]).all()):
            # Already sorted (e.g. nonzeros straight off the lexicographic
            # edge list): skip the argsort, the dominant cost at scale.
            keys_sorted = keys
            cols_sorted = cols
        else:
            order = np.argsort(keys, kind="stable")
            keys_sorted = keys[order]
            cols_sorted = cols[order]
        # ``keys_sorted`` is sorted, so uniques are the group heads — a
        # boundary scan beats a hash-based np.unique on large graphs.
        if keys_sorted.size:
            head = np.empty(keys_sorted.size, dtype=bool)
            head[0] = True
            np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=head[1:])
            unique_keys = keys_sorted[head]
            ordinal = np.cumsum(head) - 1
        else:
            unique_keys = keys_sorted
            ordinal = np.empty(0, dtype=np.int64)
        bits = np.zeros((unique_keys.size, slice_bits), dtype=bool)
        bits[ordinal, cols_sorted % slice_bits] = True
        data = (
            np.packbits(bits, axis=1, bitorder="little")
            if unique_keys.size
            else np.zeros((0, slice_bits // 8), dtype=np.uint8)
        )
        slice_ids = (unique_keys % slices_per_row).astype(np.int64)
        owner_rows = (unique_keys // slices_per_row).astype(np.int64)
        counts = np.bincount(owner_rows, minlength=num_rows)
        indptr = np.zeros(num_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if store is not None:
            data = store.adopt(data)
            slice_ids = store.adopt(slice_ids)
        return cls(num_rows, num_cols, slice_bits, indptr, slice_ids, data)

    @classmethod
    def from_graph(
        cls, graph: Graph, orientation: str = "upper", slice_bits: int = 64,
        store=None,
    ) -> "SlicedMatrix":
        """Slice the (oriented) adjacency matrix of ``graph``.

        ``orientation="upper"`` slices rows of the DAG-oriented matrix
        (successors); ``"lower"`` slices its transpose (predecessors) —
        which is exactly the *column* structure of the upper matrix, since
        column ``j`` of ``A`` is row ``j`` of ``A^T``.

        ``store`` is forwarded to :meth:`from_nonzeros`: with a ``memmap``
        backing store, large slice payloads land on disk.
        """
        if orientation not in _ORIENTATIONS:
            raise SlicingError(f"unknown orientation {orientation!r}")
        n = graph.num_vertices
        # Expand the (sorted-neighbour) CSR rather than the edge list: the
        # resulting nonzeros arrive ordered by (row, col) for *every*
        # orientation, so from_nonzeros skips its argsort.
        indptr, indices = graph.csr
        owners = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        if orientation == "upper":
            keep = owners < indices
            rows, cols = owners[keep], indices[keep]
        elif orientation == "lower":
            keep = owners > indices
            rows, cols = owners[keep], indices[keep]
        else:
            rows, cols = owners, indices
        return cls.from_nonzeros(rows, cols, n, n, slice_bits=slice_bits, store=store)

    @classmethod
    def from_dense(cls, dense: np.ndarray, slice_bits: int = 64) -> "SlicedMatrix":
        """Slice a dense 0/1 matrix (test helper)."""
        dense = np.asarray(dense, dtype=bool)
        if dense.ndim != 2:
            raise SlicingError(f"expected a 2-D matrix, got shape {dense.shape}")
        rows, cols = np.nonzero(dense)
        return cls.from_nonzeros(
            rows, cols, dense.shape[0], dense.shape[1], slice_bits=slice_bits
        )

    def mark_structure_changed(self) -> None:
        """Record a structural mutation: bump the version, drop caches.

        The one place every mutator (see :mod:`repro.core.incremental`)
        must call after inserting or deleting valid slices.  Centralising
        the invalidation here is what keeps :meth:`global_keys` and any
        resident :class:`~repro.core.plan.JoinPlan` coherent — the
        regression suite in ``tests/test_plan.py`` mutates structures
        every way the incremental path can and asserts both stay exact.
        """
        self.structure_version += 1
        self._keys_cache = None

    # ------------------------------------------------------------------
    # Size / statistics (Table III & IV quantities)
    # ------------------------------------------------------------------
    @property
    def num_valid_slices(self) -> int:
        """``N_VS`` — total number of valid slices."""
        return int(self.data.shape[0])

    @property
    def slices_per_row(self) -> int:
        """``ceil(num_cols / |S|)``."""
        return _slices_per_row(self.num_cols, self.slice_bits)

    @property
    def total_slices(self) -> int:
        """Total slice positions (valid or not): ``num_rows * slices_per_row``."""
        return self.num_rows * self.slices_per_row

    @property
    def valid_fraction(self) -> float:
        """Fraction of slice positions that are valid (Table IV / 100)."""
        return self.num_valid_slices / self.total_slices if self.total_slices else 0.0

    @property
    def data_bytes(self) -> int:
        """Payload size: ``N_VS x |S| / 8`` bytes (Table III quantity)."""
        return self.num_valid_slices * (self.slice_bits // 8)

    @property
    def index_bytes(self) -> int:
        """Index size: ``N_VS x 4`` bytes."""
        return self.num_valid_slices * INDEX_BYTES

    @property
    def compressed_bytes(self) -> int:
        """Overall compressed size ``N_VS x (|S|/8 + 4)`` bytes (Section IV-B)."""
        return self.data_bytes + self.index_bytes

    def nnz(self) -> int:
        """Number of non-zeros represented."""
        return bitops.popcount(self.data)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def row_slices(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """``(slice_ids, data)`` views for one row (both read-only)."""
        if not 0 <= row < self.num_rows:
            raise SlicingError(f"row {row} out of range [0, {self.num_rows})")
        lo, hi = int(self.indptr[row]), int(self.indptr[row + 1])
        ids = self.slice_ids[lo:hi]
        payload = self.data[lo:hi]
        ids.flags.writeable = False
        payload.flags.writeable = False
        return ids, payload

    def owner_rows(self) -> np.ndarray:
        """Owning row of every valid slice, aligned with :attr:`slice_ids`.

        Batch accessor for the vectorized engine: together with
        :attr:`slice_ids` it identifies each valid slice globally without
        per-row Python calls.
        """
        return np.repeat(
            np.arange(self.num_rows, dtype=np.int64), np.diff(self.indptr)
        )

    def global_keys(self) -> np.ndarray:
        """``row * slices_per_row + slice_id`` for every valid slice.

        Because valid slices are stored row-major with ascending slice ids
        within each row, the returned array is strictly ascending — so a
        single :func:`np.searchsorted` can merge-join the valid slices of
        thousands of (row, column) pairs at once.

        The array is cached (treat it as read-only): the engine re-joins
        against the same structure once per batch and per term, and the
        incremental mutators (:mod:`repro.core.incremental`) invalidate
        the cache on structural change.
        """
        if self._keys_cache is None:
            self._keys_cache = (
                self.owner_rows() * np.int64(self.slices_per_row) + self.slice_ids
            )
        return self._keys_cache

    def row_slice_ranges(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(starts, counts)`` of the valid-slice runs of many rows at once."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.num_rows):
            raise SlicingError(f"row index out of range [0, {self.num_rows})")
        starts = self.indptr[rows]
        counts = self.indptr[rows + 1] - starts
        return starts, counts

    def row_valid_count(self, row: int) -> int:
        """Number of valid slices in ``row``."""
        if not 0 <= row < self.num_rows:
            raise SlicingError(f"row {row} out of range [0, {self.num_rows})")
        return int(self.indptr[row + 1] - self.indptr[row])

    def row_valid_counts(self) -> np.ndarray:
        """Valid-slice count for every row."""
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        """Expand back to a dense boolean matrix (test helper)."""
        dense = np.zeros((self.num_rows, self.num_cols), dtype=bool)
        for row in range(self.num_rows):
            ids, payload = self.row_slices(row)
            for slice_id, slice_bytes in zip(ids.tolist(), payload):
                start = slice_id * self.slice_bits
                width = min(self.slice_bits, self.num_cols - start)
                dense[row, start: start + width] = bitops.unpack_bytes(
                    slice_bytes, width
                )
        return dense

    def __repr__(self) -> str:
        return (
            f"SlicedMatrix(shape=({self.num_rows}, {self.num_cols}), "
            f"slice_bits={self.slice_bits}, num_valid_slices={self.num_valid_slices})"
        )


@dataclass(frozen=True)
class SliceStatistics:
    """Compression metrics for one graph — the Table III / IV quantities.

    ``valid_percent`` counts valid slices over both the row structure and
    the column structure of the oriented matrix, matching the paper's
    framing that both rows and columns are sliced.
    """

    slice_bits: int
    row_valid_slices: int
    col_valid_slices: int
    total_slice_positions: int
    data_bytes: int
    compressed_bytes: int

    @property
    def num_valid_slices(self) -> int:
        """``N_VS`` over rows + columns."""
        return self.row_valid_slices + self.col_valid_slices

    @property
    def valid_percent(self) -> float:
        """Percentage of slice positions that are valid.

        Clean definition: valid slices over slice positions, both counted
        across the row structure *and* the column structure.
        """
        if not self.total_slice_positions:
            return 0.0
        return 100.0 * self.num_valid_slices / (2 * self.total_slice_positions)

    @property
    def paper_valid_percent(self) -> float:
        """Table IV's accounting of the valid-slice percentage.

        Reconciling the paper's Tables III and IV against Table II only
        works if Table IV counts the valid slices of both the row and the
        column structure against the ``n x ceil(n/|S|)`` slice positions of
        *one* matrix (e-mail-enron: 2 x N_VS_rows / positions = 1.56 % vs
        the published 1.607 %).  This property reproduces that accounting;
        :attr:`valid_percent` keeps the self-consistent definition.
        """
        if not self.total_slice_positions:
            return 0.0
        return 100.0 * self.num_valid_slices / self.total_slice_positions

    @property
    def data_megabytes(self) -> float:
        """Valid slice data size in MB (rows + columns)."""
        return self.data_bytes / 1e6

    @property
    def row_data_bytes(self) -> int:
        """Payload bytes of the row structure alone.

        This is the quantity that matches the paper's Table III ("valid
        slice data size"): one compressed copy of the graph, the one the
        controller streams row-by-row.
        """
        return self.row_valid_slices * (self.slice_bits // 8)

    @property
    def row_data_megabytes(self) -> float:
        """Row-structure payload in MB (the Table III quantity)."""
        return self.row_data_bytes / 1e6

    @property
    def compressed_megabytes(self) -> float:
        """Compressed size (data + 4-byte indexes) in MB."""
        return self.compressed_bytes / 1e6

    @property
    def computation_reduction_percent(self) -> float:
        """Work eliminated by slicing, the paper's "reduce 99.99 %" claim.

        Defined structurally as ``100 - valid_percent``: the fraction of
        slice positions that never have to be touched.
        """
        return 100.0 - self.valid_percent


def slice_statistics(
    graph: Graph,
    slice_bits: int = 64,
    orientation: str = "upper",
    row_sliced: SlicedMatrix | None = None,
    col_sliced: SlicedMatrix | None = None,
) -> SliceStatistics:
    """Compute the Table III / IV compression statistics for ``graph``.

    Slices both the rows of the oriented adjacency matrix and its columns
    (i.e. the transpose's rows), mirroring what the TCIM controller stores.
    Callers that already hold the sliced matrices (the accelerator builds
    them anyway) can pass them to skip the rebuild.
    """
    if row_sliced is None:
        row_sliced = SlicedMatrix.from_graph(graph, orientation, slice_bits=slice_bits)
    if col_sliced is None:
        col_orientation = {
            "upper": "lower", "lower": "upper", "symmetric": "symmetric"
        }[orientation]
        col_sliced = SlicedMatrix.from_graph(
            graph, col_orientation, slice_bits=slice_bits
        )
    return SliceStatistics(
        slice_bits=slice_bits,
        row_valid_slices=row_sliced.num_valid_slices,
        col_valid_slices=col_sliced.num_valid_slices,
        total_slice_positions=row_sliced.total_slices,
        data_bytes=row_sliced.data_bytes + col_sliced.data_bytes,
        compressed_bytes=row_sliced.compressed_bytes + col_sliced.compressed_bytes,
    )


def valid_pair_positions(
    row_ids: np.ndarray, col_ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Match positions of *valid slice pairs* between two sorted id arrays.

    Returns ``(row_positions, col_positions)`` such that
    ``row_ids[row_positions] == col_ids[col_positions]`` — the slice
    indices ``k`` where both ``R_i S_k`` and ``C_j S_k`` are valid.
    """
    row_positions = np.searchsorted(col_ids, row_ids)
    row_positions = np.minimum(row_positions, max(col_ids.size - 1, 0))
    if col_ids.size == 0 or row_ids.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    matched = col_ids[row_positions] == row_ids
    where = np.flatnonzero(matched)
    return where.astype(np.int64), row_positions[matched].astype(np.int64)


def _slices_per_row(num_cols: int, slice_bits: int) -> int:
    return (num_cols + slice_bits - 1) // slice_bits


def _check_slice_bits(slice_bits: int) -> None:
    if slice_bits <= 0 or slice_bits % 8:
        raise SlicingError(
            f"slice_bits must be a positive multiple of 8, got {slice_bits}"
        )
