"""Vectorized batch execution engine for the TCIM dataflow.

The legacy loop in :mod:`repro.core.accelerator` walks the oriented
adjacency structure one edge at a time and one slice pair at a time in
pure Python — faithful to Algorithm 1, but minutes-to-hours away from the
paper's Table II graphs (wiki-Talk has ~5M edges, cit-Patents ~16.5M).
This module executes the *same* dataflow in bulk:

1. the oriented edge list is processed in row-batches sized by candidate
   slice-pair count, not one edge at a time;
2. valid slice pairs are merge-joined for a whole batch with a single
   :func:`np.searchsorted` over one side's globally sorted
   ``row * slices_per_row + slice_id`` keys
   (:meth:`SlicedMatrix.global_keys`); the engine probes whichever side
   (row structure or column structure) fans out fewer candidate slices;
3. all matched payloads of the batch are gathered and ANDed at once
   through 64-bit word views of the slice payloads
   (:func:`repro.graph.bitops.word_view`), accumulating triangles with
   one word-level popcount per batch into preallocated scratch buffers;
4. the column-slice access trace is emitted as an integer key array and
   classified by :func:`repro.core.reuse.simulate_key_trace`, whose
   eviction-free prefix is vectorized.

The engine is **bit-identical** to the legacy loop: the same triangle
count, the same :class:`EventCounts` field by field, and the same cache
statistics.  The emitted key trace preserves the legacy access order —
rows ascending, successors ascending within a row, slice ids ascending
within an edge; slice ids of a matched pair ascend regardless of which
side is probed, so the join direction never changes the trace.  The
differential test-suite in ``tests/test_engine.py`` asserts all of this
across generators, orientations, slice widths and capacity-starved
caches; the legacy loop stays in the tree as the oracle.

:func:`execute_batched` also serves as the per-array kernel of the
sharded multi-array subsystem (:mod:`repro.core.sharding`, modelling the
paper's Fig. 4 bank organisation): passing ``edges`` restricts the run to
one shard's slice of the oriented edge list, with its own private column
cache trace and a row region sized to the rows that shard touches.

Resident join plans (:mod:`repro.core.plan`) capture steps 1–2 once per
session generation: passing ``plan=`` skips candidate expansion and the
merge-join entirely and goes straight to gather → AND → popcount over
the plan's matched position arrays — the repeat-query fast path the
serving tier leans on.  The planned path is bit-identical too (same
accumulator, events, and cache statistics); ``tests/test_plan.py`` holds
the differential suite.
"""

from __future__ import annotations

import numpy as np

from repro.core.reuse import CacheStatistics, simulate_key_trace
from repro.core.slicing import SlicedMatrix
from repro.errors import ArchitectureError
from repro.graph import bitops
from repro.graph.graph import Graph

__all__ = [
    "ENGINES",
    "execute_batched",
    "join_batches",
    "pair_popcount",
    "pair_popcounts",
    "oriented_edges",
    "DEFAULT_BATCH_CANDIDATES",
]

#: Recognised values of ``AcceleratorConfig.engine``.
ENGINES = ("vectorized", "legacy")

#: Candidate slice pairs examined per batch.  Bounds peak memory of the
#: expanded join arrays (several int64 temporaries per candidate, so a few
#: hundred MB worst case) while amortising every numpy call.
DEFAULT_BATCH_CANDIDATES = 1 << 21

#: Largest ``num_rows * slices_per_row`` key space for which the join uses
#: a dense position table (one int32 per slice position, 64 MB at the
#: cap) instead of per-candidate binary search.  O(1) probes beat
#: ``searchsorted``'s log factor by ~10x where the table fits.
DENSE_LOOKUP_MAX_KEYS = 1 << 24

#: Payload lanes (words or bytes) ANDed per conjunction chunk; bounds the
#: scratch buffers of :func:`pair_popcount` to a few tens of MB.
CONJUNCTION_CHUNK_LANES = 1 << 21


def oriented_edges(graph: Graph, orientation: str) -> tuple[np.ndarray, np.ndarray]:
    """``(sources, destinations)`` of the oriented matrix, in the legacy
    iteration order (rows ascending, successors ascending within a row).

    ``"upper"`` yields each undirected edge once as ``u -> v`` with
    ``u < v``; ``"symmetric"`` yields both directions.
    """
    if orientation not in ("upper", "symmetric"):
        raise ArchitectureError(
            f"orientation must be 'upper' or 'symmetric', got {orientation!r}"
        )
    if orientation == "upper":
        edges = graph.edge_array()
        return edges[:, 0], edges[:, 1]
    indptr, indices = graph.csr
    sources = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), np.diff(indptr)
    )
    return sources, indices


class _Workspace:
    """Reusable gather/AND/popcount buffers for one engine invocation.

    ``pair_popcount`` chunks its position arrays and re-gathers into
    these buffers with ``np.take(..., out=...)`` instead of allocating
    fresh temporaries per chunk — at millions of matched pairs per query
    the allocator traffic is a measurable slice of the planned fast
    path.
    """

    __slots__ = ("left", "right", "counts")

    def __init__(self) -> None:
        self.left: np.ndarray | None = None
        self.right: np.ndarray | None = None
        self.counts: np.ndarray | None = None

    def buffers(
        self, rows: int, lanes: int, dtype: np.dtype
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        left = self.left
        if (
            left is None
            or left.shape[0] < rows
            or left.shape[1] != lanes
            or left.dtype != dtype
        ):
            self.left = np.empty((rows, lanes), dtype=dtype)
            self.right = np.empty((rows, lanes), dtype=dtype)
            self.counts = np.empty((rows, lanes), dtype=np.uint8)
        return self.left, self.right, self.counts


def pair_popcount(
    row_data: np.ndarray,
    col_data: np.ndarray,
    row_positions: np.ndarray,
    col_positions: np.ndarray,
    workspace: _Workspace | None = None,
) -> int:
    """Gather → AND → popcount over matched slice-pair positions.

    The computational-array step of the dataflow for an arbitrary list
    of matched pairs: ``sum(popcount(row_data[r] & col_data[c]))`` over
    ``zip(row_positions, col_positions)``.  Payloads are processed as
    64-bit words (:func:`repro.graph.bitops.word_view`) whenever the
    slice width is a multiple of 64 bits — 8x fewer lanes than per-byte
    counting — and per-byte otherwise; both give identical sums.
    """
    total_pairs = int(row_positions.size)
    if total_pairs == 0:
        return 0
    wide_row = bitops.word_view(row_data)
    wide_col = bitops.word_view(col_data)
    if wide_row is not None and wide_col is not None:
        row_data, col_data = wide_row, wide_col
    lanes = row_data.shape[1]
    if lanes == 0:
        return 0
    if workspace is None:
        workspace = _Workspace()
    chunk_rows = max(1, CONJUNCTION_CHUNK_LANES // lanes)
    left, right, counts = workspace.buffers(
        min(chunk_rows, total_pairs), lanes, row_data.dtype
    )
    accumulator = 0
    for start in range(0, total_pairs, chunk_rows):
        stop = min(start + chunk_rows, total_pairs)
        n = stop - start
        a = left[:n]
        b = right[:n]
        c = counts[:n]
        np.take(row_data, row_positions[start:stop], axis=0, out=a)
        np.take(col_data, col_positions[start:stop], axis=0, out=b)
        np.bitwise_and(a, b, out=a)
        np.bitwise_count(a, out=c)
        accumulator += int(c.sum())
    return accumulator


def pair_popcounts(
    row_data: np.ndarray,
    col_data: np.ndarray,
    row_positions: np.ndarray,
    col_positions: np.ndarray,
    workspace: _Workspace | None = None,
) -> np.ndarray:
    """Per-pair gather → AND → popcount: one int64 count per matched pair.

    The vector-valued sibling of :func:`pair_popcount`: instead of
    accumulating one scalar over the whole position list, it returns
    ``popcount(row_data[r] & col_data[c])`` for every pair — the quantity
    the per-edge and per-vertex workload kernels
    (:mod:`repro.core.kernels`) reduce over edge runs.  Summing the
    result equals :func:`pair_popcount` exactly; both walk the same
    chunked word-view gather.
    """
    total_pairs = int(row_positions.size)
    result = np.zeros(total_pairs, dtype=np.int64)
    if total_pairs == 0:
        return result
    wide_row = bitops.word_view(row_data)
    wide_col = bitops.word_view(col_data)
    if wide_row is not None and wide_col is not None:
        row_data, col_data = wide_row, wide_col
    lanes = row_data.shape[1]
    if lanes == 0:
        return result
    if workspace is None:
        workspace = _Workspace()
    chunk_rows = max(1, CONJUNCTION_CHUNK_LANES // lanes)
    left, right, counts = workspace.buffers(
        min(chunk_rows, total_pairs), lanes, row_data.dtype
    )
    for start in range(0, total_pairs, chunk_rows):
        stop = min(start + chunk_rows, total_pairs)
        n = stop - start
        a = left[:n]
        b = right[:n]
        c = counts[:n]
        np.take(row_data, row_positions[start:stop], axis=0, out=a)
        np.take(col_data, col_positions[start:stop], axis=0, out=b)
        np.bitwise_and(a, b, out=a)
        np.bitwise_count(a, out=c)
        c.sum(axis=1, dtype=np.int64, out=result[start:stop])
    return result


def join_batches(
    row_sliced: SlicedMatrix,
    col_sliced: SlicedMatrix,
    sources: np.ndarray,
    destinations: np.ndarray,
    batch_candidates: int = DEFAULT_BATCH_CANDIDATES,
    with_edge_ids: bool = False,
):
    """Merge-join the valid slice pairs of an oriented edge list, batched.

    Yields ``(row_positions, col_positions, edge_ids)`` per batch:
    positions of each matched pair in ``row_sliced.data`` /
    ``col_sliced.data``, in the legacy iteration order (edges in input
    order, slice ids ascending within an edge).  ``edge_ids`` (the index
    into ``sources`` of each match's edge) is only materialised when
    ``with_edge_ids`` — the plan compiler needs it, the executor does
    not.

    This is the shared join of the batched executor and the
    :mod:`repro.core.plan` compiler; keeping it in one place is what
    makes the planned fast path structurally incapable of joining
    differently from the plan-free one.
    """
    if batch_candidates < 1:
        batch_candidates = 1
    num_edges = int(sources.size)
    slices_per_row = row_sliced.slices_per_row
    row_starts, row_counts = row_sliced.row_slice_ranges(sources)
    col_starts, col_counts = col_sliced.row_slice_ranges(destinations)
    # A valid pair needs both sides valid, so either side can be probed
    # against the other's sorted global keys; probe the one that expands
    # into fewer candidates.  The matched slice ids — and with them the
    # cache trace order — are identical either way.
    probe_rows = int(row_counts.sum()) <= int(col_counts.sum())
    if probe_rows:
        probe_starts, probe_counts = row_starts, row_counts
        probe_ids, probe_owner = row_sliced.slice_ids, destinations
        build = col_sliced
    else:
        probe_starts, probe_counts = col_starts, col_counts
        probe_ids, probe_owner = col_sliced.slice_ids, sources
        build = row_sliced
    # Global keys fit int32 whenever the slice-position space does; the
    # narrower dtype halves the memory the batch binary searches touch.
    key_space = build.num_rows * slices_per_row
    key_dtype = np.int32 if key_space <= np.iinfo(np.int32).max else np.int64
    spr_key = key_dtype(slices_per_row)
    build_keys = build.global_keys().astype(key_dtype, copy=False)
    position_table = None
    # The dense table costs one O(key_space) fill up front; only pay it
    # when the probe volume amortises it (full runs always do, the tiny
    # delta re-joins of the incremental path almost never do — they fall
    # back to binary search over the build side's sorted keys).
    total_candidates = int(probe_counts.sum())
    if 0 < key_space <= DENSE_LOOKUP_MAX_KEYS and total_candidates >= key_space // 16:
        position_table = np.full(key_space, -1, dtype=np.int32)
        position_table[build_keys] = np.arange(build_keys.size, dtype=np.int32)
    bounds = np.zeros(num_edges + 1, dtype=np.int64)
    np.cumsum(probe_counts, out=bounds[1:])
    start = 0
    while start < num_edges:
        stop = int(
            np.searchsorted(bounds, bounds[start] + batch_candidates, side="right")
        ) - 1
        stop = min(max(stop, start + 1), num_edges)
        total = int(bounds[stop] - bounds[start])
        if total == 0:
            start = stop
            continue
        # Expand the batch: one entry per (edge, probe slice) candidate.
        # Candidate t of edge e sits at probe position start_e + offset_t;
        # a single repeat of the per-edge delta turns the flat arange into
        # all probe positions at once.
        counts = probe_counts[start:stop]
        delta = probe_starts[start:stop] - (bounds[start:stop] - bounds[start])
        probe_positions = np.arange(total, dtype=np.int64) + np.repeat(delta, counts)
        slice_ids = probe_ids[probe_positions].astype(key_dtype, copy=False)
        owners = np.repeat(
            probe_owner[start:stop].astype(key_dtype, copy=False), counts
        )
        targets = owners * spr_key + slice_ids
        if position_table is not None:
            build_positions = position_table[targets]
            matched = build_positions >= 0
        elif build_keys.size:
            build_positions = np.searchsorted(build_keys, targets)
            build_positions = np.minimum(build_positions, build_keys.size - 1)
            matched = build_keys[build_positions] == targets
        else:
            matched = np.zeros(total, dtype=bool)
        if matched.any():
            probe_hit = probe_positions[matched]
            build_hit = build_positions[matched]
            edge_ids = None
            if with_edge_ids:
                edge_ids = np.repeat(
                    np.arange(start, stop, dtype=np.int64), counts
                )[matched]
            if probe_rows:
                yield probe_hit, build_hit, edge_ids
            else:
                yield build_hit, probe_hit, edge_ids
        start = stop


def execute_batched(
    graph: Graph | None,
    row_sliced: SlicedMatrix,
    col_sliced: SlicedMatrix,
    orientation: str,
    column_capacity: int,
    policy,
    seed: int,
    batch_candidates: int = DEFAULT_BATCH_CANDIDATES,
    edges: tuple[np.ndarray, np.ndarray] | None = None,
    row_writes: int | None = None,
    plan=None,
) -> tuple[int, dict, CacheStatistics]:
    """Run the batched dataflow.

    Returns ``(accumulator, event_fields, cache_stats)`` where
    ``accumulator`` is the raw popcount sum (pre orientation division) and
    ``event_fields`` holds every :class:`EventCounts` field.  Kept free of
    an ``EventCounts`` import so :mod:`repro.core.accelerator` can import
    this module without a cycle.

    ``edges`` restricts the run to one shard: a ``(sources, destinations)``
    pair holding a subset of the oriented edge list *in the legacy
    iteration order* (rows ascending, successors ascending within a row).
    The shard pays row-slice WRITEs only for the rows it actually touches
    and runs its own private column-cache trace — exactly the behaviour of
    one sub-array of the paper's Fig. 4 organisation.  ``edges=None``
    (the default) processes the whole oriented edge list.  ``row_writes``
    optionally passes the shard's precomputed row-slice WRITE count
    (callers like the orchestrator already hold the touched-row slice
    counts); ignored without ``edges``.  With ``edges`` given, ``graph``
    is never consulted and may be ``None`` (the incremental engine joins
    delta edge lists against standalone slice structures).

    ``plan`` passes a resident :class:`repro.core.plan.JoinPlan` compiled
    against *these* slice structures (same ``structure_version``) and
    *this* edge list: candidate expansion and the merge-join are skipped
    entirely and the matched positions/cache trace come straight off the
    plan.  The plan must be current — a stale one (the structures mutated
    since compilation) raises :class:`~repro.errors.ArchitectureError`
    rather than silently gathering the wrong slices.  Results are
    bit-identical to the plan-free path, events and cache statistics
    included.

    Triangle counting is one instance of the gather → AND → popcount
    family: this function is a :class:`repro.core.kernels.CountKernel`
    delegation to :func:`repro.core.kernels.execute_workload`, which
    runs the same dataflow for per-edge-support and per-vertex-tally
    workloads too.
    """
    from repro.core import kernels  # engine → kernels is lazy (cycle)

    result = kernels.execute_workload(
        kernels.CountKernel(),
        graph,
        row_sliced,
        col_sliced,
        orientation,
        column_capacity,
        policy,
        seed,
        batch_candidates=batch_candidates,
        edges=edges,
        row_writes=row_writes,
        plan=plan,
    )
    return result.accumulator, result.events, result.cache_stats


def _base_events(num_edges: int, slices_per_row: int, row_writes: int) -> dict:
    """The per-edge event fields every execution path shares."""
    return {
        "row_slice_writes": row_writes,
        "edges_processed": num_edges,
        "index_lookups": num_edges,
        "dense_pair_operations": num_edges * slices_per_row,
    }
