"""Graph file I/O.

Supports the SNAP plain-text edge-list format used by the paper's dataset
collection [17]: one ``u v`` pair per line, ``#``-prefixed comment lines,
arbitrary (possibly non-contiguous) integer vertex identifiers.  Vertex
identifiers are compacted onto ``0..n-1`` preserving their sorted order,
the same normalisation SNAP tools apply before triangle counting.

A compact ``.npz`` binary format is provided for caching generated
synthetic datasets between benchmark runs.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_npz",
    "write_npz",
    "load_graph",
]


def read_edge_list(path: str | Path | _io.TextIOBase, strict: bool = False) -> Graph:
    """Parse a SNAP-style whitespace-separated edge list.

    Lines starting with ``#`` (or ``%``, used by some mirrors) are ignored.
    Raises :class:`GraphFormatError` on malformed lines (fewer than two
    fields, or non-integer endpoints).

    Lines with *more* than two fields — weighted or timestamped SNAP
    exports such as ``u v weight`` — are accepted by default and the extra
    columns are ignored, reading only the ``(u, v)`` endpoints.  Pass
    ``strict=True`` to treat any extra column as malformed and raise
    instead, which guards against accidentally importing a file whose
    third column was actually part of the edge key.
    """
    if isinstance(path, (str, Path)):
        with open(path, "r", encoding="utf-8") as handle:
            return _parse_edge_lines(handle, name=str(path), strict=strict)
    return _parse_edge_lines(path, name="<stream>", strict=strict)


def _parse_edge_lines(handle, name: str, strict: bool = False) -> Graph:
    sources: list[int] = []
    targets: list[int] = []
    for line_number, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "%")):
            continue
        fields = stripped.split()
        if len(fields) < 2:
            raise GraphFormatError(
                f"{name}:{line_number}: expected 'u v', got {stripped!r}"
            )
        if strict and len(fields) > 2:
            raise GraphFormatError(
                f"{name}:{line_number}: expected exactly 'u v' in strict "
                f"mode, got {len(fields)} fields in {stripped!r}"
            )
        try:
            u, v = int(fields[0]), int(fields[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"{name}:{line_number}: non-integer vertex in {stripped!r}"
            ) from exc
        sources.append(u)
        targets.append(v)
    if not sources:
        return Graph(0)
    raw = np.stack(
        [np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)],
        axis=1,
    )
    compact = _compact_vertex_ids(raw)
    num_vertices = int(compact.max()) + 1 if compact.size else 0
    return Graph(num_vertices, compact)


def _compact_vertex_ids(edges: np.ndarray) -> np.ndarray:
    """Map arbitrary integer vertex ids onto ``0..n-1`` (sorted order)."""
    unique_ids, inverse = np.unique(edges.ravel(), return_inverse=True)
    del unique_ids
    return inverse.reshape(edges.shape).astype(np.int64)


def write_edge_list(graph: Graph, path: str | Path, header: str | None = None) -> None:
    """Write a graph in the SNAP edge-list format (``u < v`` per line)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for header_line in header.splitlines():
                handle.write(f"# {header_line}\n")
        handle.write(f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\n")


def write_npz(graph: Graph, path: str | Path) -> None:
    """Save a graph to a compressed ``.npz`` file."""
    path = Path(path)
    np.savez_compressed(
        path,
        num_vertices=np.int64(graph.num_vertices),
        edges=graph.edge_array(),
    )


def read_npz(path: str | Path) -> Graph:
    """Load a graph previously saved with :func:`write_npz`."""
    with np.load(Path(path)) as data:
        try:
            num_vertices = int(data["num_vertices"])
            edges = data["edges"]
        except KeyError as exc:
            raise GraphFormatError(f"{path}: missing field {exc}") from exc
    return Graph(num_vertices, edges)


def load_graph(path: str | Path, strict: bool = False) -> Graph:
    """Load a graph, dispatching on file extension (``.npz`` vs text).

    ``strict`` is forwarded to :func:`read_edge_list` for text files.
    """
    path = Path(path)
    if path.suffix == ".npz":
        return read_npz(path)
    return read_edge_list(path, strict=strict)
