"""Graph file I/O.

Supports the SNAP plain-text edge-list format used by the paper's dataset
collection [17]: one ``u v`` pair per line, ``#``-prefixed comment lines,
arbitrary (possibly non-contiguous) integer vertex identifiers.  Vertex
identifiers are compacted onto ``0..n-1`` preserving their sorted order,
the same normalisation SNAP tools apply before triangle counting.

Parsing streams through bounded chunks (:func:`iter_edge_chunks`):
:func:`read_edge_list` holds one chunk of Python scalars at a time plus
the accumulated compact ``int64`` arrays, so peak parse memory is
``O(chunk + edges)`` rather than two full Python-list copies of the
file.  A ``max_edges`` guard lets out-of-core callers refuse inputs
beyond their budget before the file is fully materialised.

A compact ``.npz`` binary format is provided for caching generated
synthetic datasets between benchmark runs.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.graph import Graph

__all__ = [
    "iter_edge_chunks",
    "read_edge_list",
    "write_edge_list",
    "read_npz",
    "write_npz",
    "load_graph",
]

#: Edges parsed per streamed chunk: large enough that per-chunk numpy
#: overhead vanishes, small enough (~4 MB of Python ints) that parsing
#: never holds the whole file as scalar lists.
DEFAULT_CHUNK_EDGES = 262_144


def iter_edge_chunks(
    path: str | Path | _io.TextIOBase,
    *,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    strict: bool = False,
):
    """Stream a SNAP-style edge list as ``(k, 2)`` int64 arrays.

    Yields raw (uncompacted) endpoint arrays of at most ``chunk_edges``
    rows each, in file order.  Comment and malformed-line handling match
    :func:`read_edge_list`; this is its streaming core, exposed for
    callers that want to fold over a file too large to hold as one edge
    array (external partitioners, filters, samplers).
    """
    if chunk_edges < 1:
        raise GraphFormatError(f"chunk_edges must be >= 1, got {chunk_edges}")
    if isinstance(path, (str, Path)):
        with open(path, "r", encoding="utf-8") as handle:
            yield from _iter_chunks(handle, str(path), chunk_edges, strict)
    else:
        yield from _iter_chunks(path, "<stream>", chunk_edges, strict)


def _iter_chunks(handle, name: str, chunk_edges: int, strict: bool):
    sources: list[int] = []
    targets: list[int] = []
    for line_number, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "%")):
            continue
        fields = stripped.split()
        if len(fields) < 2:
            raise GraphFormatError(
                f"{name}:{line_number}: expected 'u v', got {stripped!r}"
            )
        if strict and len(fields) > 2:
            raise GraphFormatError(
                f"{name}:{line_number}: expected exactly 'u v' in strict "
                f"mode, got {len(fields)} fields in {stripped!r}"
            )
        try:
            u, v = int(fields[0]), int(fields[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"{name}:{line_number}: non-integer vertex in {stripped!r}"
            ) from exc
        sources.append(u)
        targets.append(v)
        if len(sources) >= chunk_edges:
            yield _chunk_array(sources, targets)
            sources.clear()
            targets.clear()
    if sources:
        yield _chunk_array(sources, targets)


def _chunk_array(sources: list[int], targets: list[int]) -> np.ndarray:
    return np.stack(
        [np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)],
        axis=1,
    )


def read_edge_list(
    path: str | Path | _io.TextIOBase,
    strict: bool = False,
    *,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    max_edges: int | None = None,
) -> Graph:
    """Parse a SNAP-style whitespace-separated edge list.

    Lines starting with ``#`` (or ``%``, used by some mirrors) are ignored.
    Raises :class:`GraphFormatError` on malformed lines (fewer than two
    fields, or non-integer endpoints).

    Lines with *more* than two fields — weighted or timestamped SNAP
    exports such as ``u v weight`` — are accepted by default and the extra
    columns are ignored, reading only the ``(u, v)`` endpoints.  Pass
    ``strict=True`` to treat any extra column as malformed and raise
    instead, which guards against accidentally importing a file whose
    third column was actually part of the edge key.

    Parsing streams in ``chunk_edges``-sized windows; ``max_edges``
    (when set) aborts with :class:`GraphFormatError` as soon as the file
    exceeds that many edge lines, *before* the rest is materialised —
    the admission guard for memory-budgeted out-of-core loads.
    """
    if max_edges is not None and max_edges < 0:
        raise GraphFormatError(f"max_edges must be >= 0, got {max_edges}")
    name = str(path) if isinstance(path, (str, Path)) else "<stream>"
    chunks: list[np.ndarray] = []
    total = 0
    for chunk in iter_edge_chunks(path, chunk_edges=chunk_edges, strict=strict):
        total += len(chunk)
        if max_edges is not None and total > max_edges:
            raise GraphFormatError(
                f"{name}: edge list exceeds max_edges={max_edges} "
                f"(aborted after {total} edges)"
            )
        chunks.append(chunk)
    if not chunks:
        return Graph(0)
    raw = np.concatenate(chunks, axis=0)
    compact = _compact_vertex_ids(raw)
    num_vertices = int(compact.max()) + 1 if compact.size else 0
    return Graph(num_vertices, compact)


def _compact_vertex_ids(edges: np.ndarray) -> np.ndarray:
    """Map arbitrary integer vertex ids onto ``0..n-1`` (sorted order)."""
    unique_ids, inverse = np.unique(edges.ravel(), return_inverse=True)
    del unique_ids
    return inverse.reshape(edges.shape).astype(np.int64)


def write_edge_list(graph: Graph, path: str | Path, header: str | None = None) -> None:
    """Write a graph in the SNAP edge-list format (``u < v`` per line)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for header_line in header.splitlines():
                handle.write(f"# {header_line}\n")
        handle.write(f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\n")


def write_npz(graph: Graph, path: str | Path) -> None:
    """Save a graph to a compressed ``.npz`` file."""
    path = Path(path)
    np.savez_compressed(
        path,
        num_vertices=np.int64(graph.num_vertices),
        edges=graph.edge_array(),
    )


def read_npz(path: str | Path) -> Graph:
    """Load a graph previously saved with :func:`write_npz`."""
    with np.load(Path(path)) as data:
        try:
            num_vertices = int(data["num_vertices"])
            edges = data["edges"]
        except KeyError as exc:
            raise GraphFormatError(f"{path}: missing field {exc}") from exc
    return Graph(num_vertices, edges)


def load_graph(
    path: str | Path, strict: bool = False, *, max_edges: int | None = None
) -> Graph:
    """Load a graph, dispatching on file extension (``.npz`` vs text).

    ``strict`` and ``max_edges`` are forwarded to :func:`read_edge_list`
    for text files; for ``.npz`` files ``max_edges`` is checked against
    the stored edge count after the (already compact) load.
    """
    path = Path(path)
    if path.suffix == ".npz":
        graph = read_npz(path)
        if max_edges is not None and graph.num_edges > max_edges:
            raise GraphFormatError(
                f"{path}: graph has {graph.num_edges} edges, over "
                f"max_edges={max_edges}"
            )
        return graph
    return read_edge_list(path, strict=strict, max_edges=max_edges)
