"""Low-level bit-vector primitives shared by the bit-matrix and slicing code.

The TCIM method (paper Section III) replaces arithmetic with bulk bitwise
``AND`` + ``BitCount`` work.  This module provides the packed representations
those kernels operate on:

* 64-bit-word packing (:func:`pack_bits` / :func:`unpack_bits`) used by
  :class:`repro.graph.bitmatrix.BitMatrix`, where bit ``j`` of a vector lives
  in word ``j >> 6`` at bit position ``j & 63`` (little-endian bit order);
* byte packing (:func:`pack_bytes` / :func:`unpack_bytes`) used by the slice
  compression of Section IV-B, where slice sizes are multiples of 8 bits;
* population counts (:func:`popcount`, :func:`popcount_per_word`) implemented
  with ``numpy.bitwise_count`` and verified against a pure-Python fallback in
  the test-suite.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = [
    "WORD_BITS",
    "words_for_bits",
    "pack_bits",
    "unpack_bits",
    "pack_bytes",
    "unpack_bytes",
    "popcount",
    "popcount_per_word",
    "popcount_python",
    "word_view",
    "conjunction_popcount",
    "iter_set_bits",
    "bit_get",
    "bit_set",
]

#: Number of bits in one machine word of the packed representation.
WORD_BITS = 64

_WORD_DTYPE = np.uint64


def words_for_bits(num_bits: int) -> int:
    """Return how many 64-bit words are needed to hold ``num_bits`` bits."""
    if num_bits < 0:
        raise ValueError(f"num_bits must be non-negative, got {num_bits}")
    return (num_bits + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean (or 0/1 integer) vector into little-endian 64-bit words.

    Bit ``j`` of the input is stored in ``out[j // 64]`` at position
    ``j % 64``.  The trailing word is zero-padded.

    >>> pack_bits(np.array([1, 1, 0, 0], dtype=bool))
    array([3], dtype=uint64)
    """
    bits = np.ascontiguousarray(bits, dtype=bool)
    if bits.ndim != 1:
        raise ValueError(f"expected a 1-D bit vector, got shape {bits.shape}")
    num_words = words_for_bits(bits.size)
    padded = np.zeros(num_words * WORD_BITS, dtype=bool)
    padded[: bits.size] = bits
    # ``np.packbits`` with bitorder="little" packs 8 bits per byte; viewing
    # the byte stream as uint64 keeps the little-endian bit order per word.
    packed_bytes = np.packbits(padded, bitorder="little")
    return packed_bytes.view(_WORD_DTYPE)


def unpack_bits(words: np.ndarray, num_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: expand words into ``num_bits`` booleans."""
    words = np.ascontiguousarray(words, dtype=_WORD_DTYPE)
    if num_bits < 0 or num_bits > words.size * WORD_BITS:
        raise ValueError(
            f"num_bits={num_bits} out of range for {words.size} words"
        )
    as_bytes = words.view(np.uint8)
    bits = np.unpackbits(as_bytes, bitorder="little")
    return bits[:num_bits].astype(bool)


def pack_bytes(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean vector into bytes (little-endian bit order).

    Used by the slice-compression format where a slice of ``|S|`` bits is
    stored as ``|S| / 8`` bytes.
    """
    bits = np.ascontiguousarray(bits, dtype=bool)
    if bits.ndim != 1:
        raise ValueError(f"expected a 1-D bit vector, got shape {bits.shape}")
    return np.packbits(bits, bitorder="little")


def unpack_bytes(data: np.ndarray, num_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bytes`."""
    data = np.ascontiguousarray(data, dtype=np.uint8)
    if num_bits < 0 or num_bits > data.size * 8:
        raise ValueError(f"num_bits={num_bits} out of range for {data.size} bytes")
    bits = np.unpackbits(data, bitorder="little")
    return bits[:num_bits].astype(bool)


def popcount(words: np.ndarray) -> int:
    """Total number of set bits across an array of unsigned integers.

    This is the ``BitCount`` primitive of paper Eq. (4); the in-memory
    architecture realises it with 8->256 look-up tables
    (:class:`repro.memory.bitcounter.BitCounter`), while software callers use
    this vectorised version.  Byte-packed (uint8) inputs are counted
    through a 64-bit word reinterpretation when the layout allows, so
    every kernel shares the one audited word-level path.
    """
    words = np.asarray(words)
    if words.size == 0:
        return 0
    if words.dtype.kind != "u":
        raise TypeError(f"popcount expects unsigned integers, got {words.dtype}")
    if words.dtype == np.uint8:
        as_words = word_view(words)
        if as_words is not None:
            words = as_words
    return int(np.bitwise_count(words).sum())


def popcount_per_word(words: np.ndarray) -> np.ndarray:
    """Per-element population count (vector of small integers)."""
    words = np.asarray(words)
    if words.dtype.kind != "u":
        raise TypeError(f"popcount expects unsigned integers, got {words.dtype}")
    return np.bitwise_count(words)


def popcount_python(value: int) -> int:
    """Pure-Python reference popcount used to cross-check the numpy path."""
    if value < 0:
        raise ValueError("popcount_python expects a non-negative integer")
    return value.bit_count()


def word_view(data: np.ndarray) -> np.ndarray | None:
    """Reinterpret a byte-packed payload array as 64-bit words, if possible.

    For a C-contiguous uint8 array whose trailing axis holds a multiple
    of 8 bytes, returns a zero-copy ``uint64`` view with the same leading
    shape (a ``(n, bytes)`` slice-payload block becomes ``(n, bytes//8)``
    words).  Returns ``None`` when the layout does not admit the
    reinterpretation (odd slice widths, non-contiguous views) — callers
    fall back to the per-byte path.  Population counts are invariant
    under the reinterpretation, but word *values* are endian-dependent,
    so use the view only for counting/AND-style lane work.
    """
    data = np.asarray(data)
    if (
        data.dtype != np.uint8
        or data.ndim == 0
        or not data.flags.c_contiguous
        or data.shape[-1] % 8
        or data.shape[-1] == 0
    ):
        return None
    return data.view(_WORD_DTYPE)


def conjunction_popcount(a: np.ndarray, b: np.ndarray) -> int:
    """``popcount(a & b)`` over two equal-shape unsigned payload blocks.

    The AND + BitCount step of paper Eq. (5) for a block of gathered
    slice payloads.  uint8 blocks are processed through
    :func:`word_view` when the slice width allows — 8x fewer lanes than
    per-byte ``np.bitwise_count`` — and fall back to bytes otherwise.
    The result is bit-identical either way.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"operand shapes differ: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0
    wide_a, wide_b = word_view(a), word_view(b)
    if wide_a is not None and wide_b is not None:
        a, b = wide_a, wide_b
    return int(np.bitwise_count(a & b).sum())


def iter_set_bits(words: np.ndarray, num_bits: int | None = None) -> Iterator[int]:
    """Yield the indices of set bits in a packed word array, ascending.

    ``num_bits`` bounds the highest bit index considered (defaults to the
    full width of the array).
    """
    words = np.ascontiguousarray(words, dtype=_WORD_DTYPE)
    limit = words.size * WORD_BITS if num_bits is None else num_bits
    for word_index, word in enumerate(words.tolist()):
        base = word_index * WORD_BITS
        if base >= limit:
            break
        while word:
            low = word & -word
            bit = low.bit_length() - 1
            position = base + bit
            if position >= limit:
                return
            yield position
            word ^= low


def bit_get(words: np.ndarray, index: int) -> bool:
    """Read bit ``index`` from a packed word array."""
    if index < 0:
        raise IndexError(f"negative bit index {index}")
    word = int(words[index // WORD_BITS])
    return bool((word >> (index % WORD_BITS)) & 1)


def bit_set(words: np.ndarray, index: int, value: bool = True) -> None:
    """Write bit ``index`` of a packed word array in place."""
    if index < 0:
        raise IndexError(f"negative bit index {index}")
    word_index = index // WORD_BITS
    mask = _WORD_DTYPE(1 << (index % WORD_BITS))
    if value:
        words[word_index] |= mask
    else:
        words[word_index] &= ~mask
