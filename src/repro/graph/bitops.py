"""Low-level bit-vector primitives shared by the bit-matrix and slicing code.

The TCIM method (paper Section III) replaces arithmetic with bulk bitwise
``AND`` + ``BitCount`` work.  This module provides the packed representations
those kernels operate on:

* 64-bit-word packing (:func:`pack_bits` / :func:`unpack_bits`) used by
  :class:`repro.graph.bitmatrix.BitMatrix`, where bit ``j`` of a vector lives
  in word ``j >> 6`` at bit position ``j & 63`` (little-endian bit order);
* byte packing (:func:`pack_bytes` / :func:`unpack_bytes`) used by the slice
  compression of Section IV-B, where slice sizes are multiples of 8 bits;
* population counts (:func:`popcount`, :func:`popcount_per_word`) implemented
  with ``numpy.bitwise_count`` and verified against a pure-Python fallback in
  the test-suite.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = [
    "WORD_BITS",
    "words_for_bits",
    "pack_bits",
    "unpack_bits",
    "pack_bytes",
    "unpack_bytes",
    "popcount",
    "popcount_per_word",
    "popcount_python",
    "iter_set_bits",
    "bit_get",
    "bit_set",
]

#: Number of bits in one machine word of the packed representation.
WORD_BITS = 64

_WORD_DTYPE = np.uint64


def words_for_bits(num_bits: int) -> int:
    """Return how many 64-bit words are needed to hold ``num_bits`` bits."""
    if num_bits < 0:
        raise ValueError(f"num_bits must be non-negative, got {num_bits}")
    return (num_bits + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean (or 0/1 integer) vector into little-endian 64-bit words.

    Bit ``j`` of the input is stored in ``out[j // 64]`` at position
    ``j % 64``.  The trailing word is zero-padded.

    >>> pack_bits(np.array([1, 1, 0, 0], dtype=bool))
    array([3], dtype=uint64)
    """
    bits = np.ascontiguousarray(bits, dtype=bool)
    if bits.ndim != 1:
        raise ValueError(f"expected a 1-D bit vector, got shape {bits.shape}")
    num_words = words_for_bits(bits.size)
    padded = np.zeros(num_words * WORD_BITS, dtype=bool)
    padded[: bits.size] = bits
    # ``np.packbits`` with bitorder="little" packs 8 bits per byte; viewing
    # the byte stream as uint64 keeps the little-endian bit order per word.
    packed_bytes = np.packbits(padded, bitorder="little")
    return packed_bytes.view(_WORD_DTYPE)


def unpack_bits(words: np.ndarray, num_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: expand words into ``num_bits`` booleans."""
    words = np.ascontiguousarray(words, dtype=_WORD_DTYPE)
    if num_bits < 0 or num_bits > words.size * WORD_BITS:
        raise ValueError(
            f"num_bits={num_bits} out of range for {words.size} words"
        )
    as_bytes = words.view(np.uint8)
    bits = np.unpackbits(as_bytes, bitorder="little")
    return bits[:num_bits].astype(bool)


def pack_bytes(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean vector into bytes (little-endian bit order).

    Used by the slice-compression format where a slice of ``|S|`` bits is
    stored as ``|S| / 8`` bytes.
    """
    bits = np.ascontiguousarray(bits, dtype=bool)
    if bits.ndim != 1:
        raise ValueError(f"expected a 1-D bit vector, got shape {bits.shape}")
    return np.packbits(bits, bitorder="little")


def unpack_bytes(data: np.ndarray, num_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bytes`."""
    data = np.ascontiguousarray(data, dtype=np.uint8)
    if num_bits < 0 or num_bits > data.size * 8:
        raise ValueError(f"num_bits={num_bits} out of range for {data.size} bytes")
    bits = np.unpackbits(data, bitorder="little")
    return bits[:num_bits].astype(bool)


def popcount(words: np.ndarray) -> int:
    """Total number of set bits across an array of unsigned integers.

    This is the ``BitCount`` primitive of paper Eq. (4); the in-memory
    architecture realises it with 8->256 look-up tables
    (:class:`repro.memory.bitcounter.BitCounter`), while software callers use
    this vectorised version.
    """
    words = np.asarray(words)
    if words.size == 0:
        return 0
    if words.dtype.kind != "u":
        raise TypeError(f"popcount expects unsigned integers, got {words.dtype}")
    return int(np.bitwise_count(words).sum())


def popcount_per_word(words: np.ndarray) -> np.ndarray:
    """Per-element population count (vector of small integers)."""
    words = np.asarray(words)
    if words.dtype.kind != "u":
        raise TypeError(f"popcount expects unsigned integers, got {words.dtype}")
    return np.bitwise_count(words)


def popcount_python(value: int) -> int:
    """Pure-Python reference popcount used to cross-check the numpy path."""
    if value < 0:
        raise ValueError("popcount_python expects a non-negative integer")
    return value.bit_count()


def iter_set_bits(words: np.ndarray, num_bits: int | None = None) -> Iterator[int]:
    """Yield the indices of set bits in a packed word array, ascending.

    ``num_bits`` bounds the highest bit index considered (defaults to the
    full width of the array).
    """
    words = np.ascontiguousarray(words, dtype=_WORD_DTYPE)
    limit = words.size * WORD_BITS if num_bits is None else num_bits
    for word_index, word in enumerate(words.tolist()):
        base = word_index * WORD_BITS
        if base >= limit:
            break
        while word:
            low = word & -word
            bit = low.bit_length() - 1
            position = base + bit
            if position >= limit:
                return
            yield position
            word ^= low


def bit_get(words: np.ndarray, index: int) -> bool:
    """Read bit ``index`` from a packed word array."""
    if index < 0:
        raise IndexError(f"negative bit index {index}")
    word = int(words[index // WORD_BITS])
    return bool((word >> (index % WORD_BITS)) & 1)


def bit_set(words: np.ndarray, index: int, value: bool = True) -> None:
    """Write bit ``index`` of a packed word array in place."""
    if index < 0:
        raise IndexError(f"negative bit index {index}")
    word_index = index // WORD_BITS
    mask = _WORD_DTYPE(1 << (index % WORD_BITS))
    if value:
        words[word_index] |= mask
    else:
        words[word_index] &= ~mask
