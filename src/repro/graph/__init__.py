"""Graph substrate: graphs, bit-packed matrices, generators, datasets, I/O."""

from repro.graph.bitmatrix import BitMatrix
from repro.graph.graph import Graph
from repro.graph.io import load_graph, read_edge_list, read_npz, write_edge_list, write_npz
from repro.graph.reorder import apply_ordering, bfs_order, degree_order, reverse_cuthill_mckee

__all__ = [
    "Graph",
    "BitMatrix",
    "read_edge_list",
    "write_edge_list",
    "read_npz",
    "write_npz",
    "load_graph",
    "apply_ordering",
    "bfs_order",
    "degree_order",
    "reverse_cuthill_mckee",
]
