"""Undirected simple graph substrate.

Everything in the TCIM pipeline — the bitwise kernel, the slicing
compression, the cache simulation and the baselines — consumes this class.
It stores the graph in compressed-sparse-row (CSR) form with sorted
neighbour lists, built in bulk with vectorised numpy so that the synthetic
stand-ins for the paper's SNAP datasets (Table II) remain cheap to create.

Self-loops are dropped and duplicate/reversed edges are merged during
construction, matching how triangle counting treats a simple undirected
graph.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import GraphError

__all__ = ["Graph"]


class Graph:
    """An immutable undirected simple graph over vertices ``0..n-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices.  Vertex identifiers are the contiguous range
        ``0 .. num_vertices - 1``.
    edges:
        Any iterable of ``(u, v)`` pairs or an ``(m, 2)`` integer array.
        Self-loops are discarded; duplicates (including reversed
        duplicates) are merged.

    Examples
    --------
    >>> g = Graph(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    >>> g.num_edges
    5
    >>> list(g.neighbors(1))
    [0, 2, 3]
    """

    __slots__ = ("_num_vertices", "_indptr", "_indices", "_edges_uv")

    def __init__(self, num_vertices: int, edges: Iterable | np.ndarray = ()) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be non-negative, got {num_vertices}")
        self._num_vertices = int(num_vertices)
        edge_array = _as_edge_array(edges)
        if edge_array.size and self._num_vertices == 0:
            raise GraphError("cannot add edges to a graph with zero vertices")
        if edge_array.size:
            low, high = int(edge_array.min()), int(edge_array.max())
            if low < 0 or high >= self._num_vertices:
                raise GraphError(
                    f"edge endpoint out of range [0, {self._num_vertices}): "
                    f"saw vertex {low if low < 0 else high}"
                )
        self._edges_uv = _canonicalise_edges(edge_array, self._num_vertices)
        self._indptr, self._indices = _build_csr(self._edges_uv, self._num_vertices)
        # The graph is immutable: freeze the internal arrays so accessors
        # (``csr``, ``edge_array``, ``neighbors``) can hand out views
        # without risking silent corruption through a writable alias.
        self._edges_uv.flags.writeable = False
        self._indptr.flags.writeable = False
        self._indices.flags.writeable = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable | np.ndarray, num_vertices: int | None = None) -> "Graph":
        """Build a graph from an edge list, inferring the vertex count.

        When ``num_vertices`` is omitted it is taken as ``max(endpoint) + 1``.
        """
        edge_array = _as_edge_array(edges)
        if num_vertices is None:
            num_vertices = int(edge_array.max()) + 1 if edge_array.size else 0
        return cls(num_vertices, edge_array)

    @classmethod
    def from_parts(
        cls,
        num_vertices: int,
        edges_uv: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
    ) -> "Graph":
        """Reassemble a graph from its canonical internal arrays.

        The storage tier's hydration path: ``edges_uv`` must already be
        canonical (``u < v``, deduplicated, lexicographically sorted)
        and ``indptr``/``indices`` the matching symmetric CSR — exactly
        what :meth:`edge_array` and :meth:`csr` of the original graph
        handed out.  Only cheap shape/monotonicity checks are performed;
        content integrity is the snapshot layer's hash check.
        """
        graph = cls.__new__(cls)
        graph._num_vertices = int(num_vertices)
        edges_uv = np.ascontiguousarray(edges_uv, dtype=np.int64).reshape(-1, 2)
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.shape != (graph._num_vertices + 1,) or int(indptr[-1]) != len(
            indices
        ):
            raise GraphError(
                f"CSR parts do not fit {num_vertices} vertices / "
                f"{len(indices)} half-edges"
            )
        if len(indices) != 2 * len(edges_uv):
            raise GraphError(
                f"CSR carries {len(indices)} half-edges but the edge list "
                f"has {len(edges_uv)} edges"
            )
        graph._edges_uv = edges_uv
        graph._indptr = indptr
        graph._indices = indices
        graph._edges_uv.flags.writeable = False
        graph._indptr.flags.writeable = False
        graph._indices.flags.writeable = False
        return graph

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Convert a :class:`networkx.Graph`.

        Node labels are mapped onto ``0..n-1`` in sorted order when they are
        not already a contiguous integer range.
        """
        nodes = sorted(nx_graph.nodes())
        relabel = {node: index for index, node in enumerate(nodes)}
        edges = [(relabel[u], relabel[v]) for u, v in nx_graph.edges()]
        return cls(len(nodes), edges)

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (lazy import)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self._num_vertices))
        nx_graph.add_edges_from(self.edge_array())
        return nx_graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m`` (after dedup / self-loop removal)."""
        return self._edges_uv.shape[0]

    def degree(self, vertex: int) -> int:
        """Degree of ``vertex``."""
        self._check_vertex(vertex)
        return int(self._indptr[vertex + 1] - self._indptr[vertex])

    def degrees(self) -> np.ndarray:
        """Vector of all vertex degrees."""
        return np.diff(self._indptr)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Sorted array of neighbours of ``vertex`` (a read-only view)."""
        self._check_vertex(vertex)
        return self._indices[self._indptr[vertex]: self._indptr[vertex + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        neighbours = self._indices[self._indptr[u]: self._indptr[u + 1]]
        position = np.searchsorted(neighbours, v)
        return position < neighbours.size and neighbours[position] == v

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array with ``u < v`` per row, sorted.

        The returned array is read-only, like all accessors exposing the
        internal storage.
        """
        return self._edges_uv

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges as ``(u, v)`` tuples with ``u < v``."""
        for u, v in self._edges_uv.tolist():
            yield (u, v)

    # ------------------------------------------------------------------
    # CSR access (used by the baselines and the bit-matrix builder)
    # ------------------------------------------------------------------
    @property
    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indptr, indices)`` of the symmetric adjacency structure.

        Both arrays are read-only views of the internal storage: writing
        through them used to corrupt the "immutable" graph silently.
        """
        return self._indptr, self._indices

    def adjacency_matrix(self, orientation: str = "symmetric") -> np.ndarray:
        """Dense boolean adjacency matrix (small graphs only).

        ``orientation`` is one of ``"symmetric"`` (the full matrix),
        ``"upper"`` (``A[i][j] = 1`` only for ``i < j``, the DAG orientation
        used by the paper's Fig. 2 example) or ``"lower"``.
        """
        matrix = np.zeros((self._num_vertices, self._num_vertices), dtype=bool)
        u, v = self._edges_uv[:, 0], self._edges_uv[:, 1]
        if orientation == "symmetric":
            matrix[u, v] = True
            matrix[v, u] = True
        elif orientation == "upper":
            matrix[u, v] = True
        elif orientation == "lower":
            matrix[v, u] = True
        else:
            raise GraphError(f"unknown orientation {orientation!r}")
        return matrix

    def scipy_adjacency(self, orientation: str = "symmetric"):
        """Sparse CSR adjacency matrix (``scipy.sparse.csr_matrix`` of int8)."""
        from scipy import sparse

        u, v = self._edges_uv[:, 0], self._edges_uv[:, 1]
        if orientation == "symmetric":
            rows = np.concatenate([u, v])
            cols = np.concatenate([v, u])
        elif orientation == "upper":
            rows, cols = u, v
        elif orientation == "lower":
            rows, cols = v, u
        else:
            raise GraphError(f"unknown orientation {orientation!r}")
        data = np.ones(rows.size, dtype=np.int8)
        shape = (self._num_vertices, self._num_vertices)
        return sparse.csr_matrix((data, (rows, cols)), shape=shape)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def relabel(self, permutation: np.ndarray) -> "Graph":
        """Return a copy with vertex ``v`` renamed ``permutation[v]``.

        ``permutation`` must be a bijection over ``0..n-1``.
        """
        permutation = np.asarray(permutation, dtype=np.int64)
        if permutation.shape != (self._num_vertices,):
            raise GraphError(
                f"permutation must have length {self._num_vertices}, "
                f"got shape {permutation.shape}"
            )
        if not np.array_equal(np.sort(permutation), np.arange(self._num_vertices)):
            raise GraphError("permutation is not a bijection over the vertices")
        relabelled = permutation[self._edges_uv]
        return Graph(self._num_vertices, relabelled)

    def relabel_by_degree(self, descending: bool = False) -> "Graph":
        """Relabel vertices by ascending (default) or descending degree.

        Degree ordering is the classic preprocessing step for
        intersection-based triangle counting; it also concentrates the
        non-zeros of the oriented adjacency matrix, which changes the
        valid-slice statistics of Section IV-B (explored by the ablation
        benchmarks).
        """
        order = np.argsort(self.degrees(), kind="stable")
        if descending:
            order = order[::-1]
        permutation = np.empty(self._num_vertices, dtype=np.int64)
        permutation[order] = np.arange(self._num_vertices)
        return self.relabel(permutation)

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Induced subgraph on ``vertices`` (relabelled to ``0..k-1`` in the
        given order)."""
        vertex_list = np.asarray(list(vertices), dtype=np.int64)
        if vertex_list.size != np.unique(vertex_list).size:
            raise GraphError("subgraph vertex list contains duplicates")
        if vertex_list.size and (
            vertex_list.min() < 0 or vertex_list.max() >= self._num_vertices
        ):
            raise GraphError("subgraph vertex out of range")
        position = np.full(self._num_vertices, -1, dtype=np.int64)
        position[vertex_list] = np.arange(vertex_list.size)
        u, v = self._edges_uv[:, 0], self._edges_uv[:, 1]
        keep = (position[u] >= 0) & (position[v] >= 0)
        edges = np.stack([position[u[keep]], position[v[keep]]], axis=1)
        return Graph(vertex_list.size, edges)

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._num_vertices == other._num_vertices
            and np.array_equal(self._edges_uv, other._edges_uv)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash is enough
        return id(self)

    def __repr__(self) -> str:
        return f"Graph(num_vertices={self._num_vertices}, num_edges={self.num_edges})"

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self._num_vertices:
            raise GraphError(
                f"vertex {vertex} out of range [0, {self._num_vertices})"
            )


def _as_edge_array(edges: Iterable | np.ndarray) -> np.ndarray:
    """Normalise any edge input into an ``(m, 2)`` int64 array."""
    if isinstance(edges, np.ndarray):
        array = edges.astype(np.int64, copy=False)
    else:
        array = np.array(list(edges), dtype=np.int64)
    if array.size == 0:
        return array.reshape(0, 2)
    if array.ndim != 2 or array.shape[1] != 2:
        raise GraphError(f"edge list must have shape (m, 2), got {array.shape}")
    return array


def _canonicalise_edges(edge_array: np.ndarray, num_vertices: int) -> np.ndarray:
    """Drop self-loops, orient ``u < v``, deduplicate, sort lexicographically."""
    if edge_array.size == 0:
        return edge_array.reshape(0, 2)
    not_loop = edge_array[:, 0] != edge_array[:, 1]
    edge_array = edge_array[not_loop]
    if edge_array.size == 0:
        return edge_array.reshape(0, 2)
    u = np.minimum(edge_array[:, 0], edge_array[:, 1])
    v = np.maximum(edge_array[:, 0], edge_array[:, 1])
    # Encode each edge into one integer for a fast unique; safe because
    # u * n + v < n**2 <= 2**63 for any graph that fits in memory.
    keys = u * np.int64(num_vertices) + v
    unique_keys = np.unique(keys)
    out = np.empty((unique_keys.size, 2), dtype=np.int64)
    out[:, 0] = unique_keys // num_vertices
    out[:, 1] = unique_keys % num_vertices
    return out


def _build_csr(edges_uv: np.ndarray, num_vertices: int) -> tuple[np.ndarray, np.ndarray]:
    """Build the symmetric CSR arrays from canonical ``u < v`` edges."""
    if edges_uv.size == 0:
        return (
            np.zeros(num_vertices + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    sources = np.concatenate([edges_uv[:, 0], edges_uv[:, 1]])
    targets = np.concatenate([edges_uv[:, 1], edges_uv[:, 0]])
    order = np.lexsort((targets, sources))
    indices = targets[order]
    counts = np.bincount(sources, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, indices
