"""Bit-packed adjacency matrices.

Section III of the paper works on the adjacency matrix as a bag of bit
vectors: rows ``R_i = A[i][*]`` and columns ``C_j = A[*][j]^T``.  The
:class:`BitMatrix` stores one bit per potential edge packed into 64-bit
words, so the ``AND(R_i, C_j)`` of Eq. (5) becomes a handful of word-wide
``&`` operations followed by a population count — exactly the work profile
the computational STT-MRAM array executes in hardware.

Columns are served from the lazily-built transpose: column ``j`` of ``A``
is row ``j`` of ``A^T``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph import bitops
from repro.graph.graph import Graph

__all__ = ["BitMatrix"]

_ORIENTATIONS = ("symmetric", "upper", "lower")


class BitMatrix:
    """A dense 0/1 matrix stored as packed 64-bit words, one row per line.

    Parameters
    ----------
    data:
        ``(num_rows, num_words)`` array of ``uint64`` holding the packed
        rows.  Bit ``j`` of row ``i`` lives in ``data[i, j // 64]`` at bit
        position ``j % 64``.
    num_cols:
        Logical number of columns (``num_words * 64`` minus padding).
    """

    __slots__ = ("_data", "_num_cols", "_transpose_cache")

    def __init__(self, data: np.ndarray, num_cols: int) -> None:
        data = np.ascontiguousarray(data, dtype=np.uint64)
        if data.ndim != 2:
            raise GraphError(f"BitMatrix data must be 2-D, got shape {data.shape}")
        if num_cols < 0 or bitops.words_for_bits(num_cols) != data.shape[1]:
            raise GraphError(
                f"num_cols={num_cols} inconsistent with {data.shape[1]} words per row"
            )
        self._data = data
        self._num_cols = int(num_cols)
        self._transpose_cache: "BitMatrix | None" = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, num_rows: int, num_cols: int) -> "BitMatrix":
        """All-zero matrix of the given logical shape."""
        words = bitops.words_for_bits(num_cols)
        return cls(np.zeros((num_rows, words), dtype=np.uint64), num_cols)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "BitMatrix":
        """Pack a dense boolean / 0-1 matrix."""
        dense = np.asarray(dense, dtype=bool)
        if dense.ndim != 2:
            raise GraphError(f"expected a 2-D matrix, got shape {dense.shape}")
        num_rows, num_cols = dense.shape
        matrix = cls.zeros(num_rows, num_cols)
        if num_rows and num_cols:
            padded = np.zeros((num_rows, matrix._data.shape[1] * 64), dtype=bool)
            padded[:, :num_cols] = dense
            packed = np.packbits(padded, axis=1, bitorder="little")
            matrix._data = np.ascontiguousarray(packed).view(np.uint64).reshape(
                num_rows, -1
            )
        return matrix

    @classmethod
    def from_graph(cls, graph: Graph, orientation: str = "upper") -> "BitMatrix":
        """Pack the adjacency matrix of ``graph``.

        ``orientation="upper"`` produces the DAG orientation (``A[i][j] = 1``
        iff the edge ``{i, j}`` exists and ``i < j``) used throughout the
        paper's worked example; ``"symmetric"`` produces the full matrix.
        """
        if orientation not in _ORIENTATIONS:
            raise GraphError(f"unknown orientation {orientation!r}")
        n = graph.num_vertices
        matrix = cls.zeros(n, n)
        edges = graph.edge_array()
        if edges.size == 0:
            return matrix
        u, v = edges[:, 0], edges[:, 1]
        if orientation == "upper":
            rows, cols = u, v
        elif orientation == "lower":
            rows, cols = v, u
        else:
            rows = np.concatenate([u, v])
            cols = np.concatenate([v, u])
        words = (cols // 64).astype(np.int64)
        masks = np.left_shift(np.uint64(1), (cols % 64).astype(np.uint64))
        # Accumulate with OR; np.bitwise_or.at handles repeated (row, word).
        np.bitwise_or.at(matrix._data, (rows, words), masks)
        return matrix

    # ------------------------------------------------------------------
    # Shape & element access
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._data.shape[0]

    @property
    def num_cols(self) -> int:
        """Logical number of columns."""
        return self._num_cols

    @property
    def words_per_row(self) -> int:
        """Packed 64-bit words per row."""
        return self._data.shape[1]

    @property
    def data(self) -> np.ndarray:
        """The raw packed words (``(num_rows, words_per_row)`` uint64)."""
        return self._data

    def get(self, row: int, col: int) -> bool:
        """Read one bit."""
        self._check_position(row, col)
        return bitops.bit_get(self._data[row], col)

    def set(self, row: int, col: int, value: bool = True) -> None:
        """Write one bit (invalidates any cached transpose)."""
        self._check_position(row, col)
        bitops.bit_set(self._data[row], col, value)
        self._transpose_cache = None

    def row(self, index: int) -> np.ndarray:
        """Packed words of row ``index`` (read-only view)."""
        if not 0 <= index < self.num_rows:
            raise GraphError(f"row {index} out of range [0, {self.num_rows})")
        view = self._data[index]
        view.flags.writeable = False
        return view

    def column(self, index: int) -> np.ndarray:
        """Packed words of column ``index`` — i.e. row ``index`` of ``A^T``."""
        return self.transposed().row(index)

    def row_bits(self, index: int) -> np.ndarray:
        """Row ``index`` unpacked to a boolean vector."""
        return bitops.unpack_bits(self.row(index), self._num_cols)

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def transposed(self) -> "BitMatrix":
        """The transposed matrix (cached after the first call)."""
        if self._transpose_cache is None:
            dense = self.to_dense()
            self._transpose_cache = BitMatrix.from_dense(dense.T)
        return self._transpose_cache

    def to_dense(self) -> np.ndarray:
        """Unpack to a dense boolean matrix."""
        if self.num_rows == 0 or self._num_cols == 0:
            return np.zeros((self.num_rows, self._num_cols), dtype=bool)
        as_bytes = self._data.reshape(self.num_rows, -1).view(np.uint8)
        bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
        return bits[:, : self._num_cols].astype(bool)

    def nnz(self) -> int:
        """Total number of set bits."""
        return bitops.popcount(self._data)

    def row_nnz(self) -> np.ndarray:
        """Per-row set-bit counts."""
        if self._data.size == 0:
            return np.zeros(self.num_rows, dtype=np.int64)
        return np.bitwise_count(self._data).sum(axis=1).astype(np.int64)

    def density(self) -> float:
        """Fraction of bits set (0.0 for an empty matrix)."""
        total = self.num_rows * self._num_cols
        return self.nnz() / total if total else 0.0

    def and_popcount(self, row_index: int, col_index: int) -> int:
        """``BitCount(AND(R_i, C_j))`` — the inner operation of Eq. (5)."""
        return bitops.popcount(self.row(row_index) & self.column(col_index))

    def and_popcount_many(self, row_index: int, col_indices: np.ndarray) -> np.ndarray:
        """Vectorised ``BitCount(AND(R_i, C_j))`` for many columns ``j``.

        Exploits the data-reuse observation of Section IV-A: all non-zeros
        of one row share that row, so the row's words are broadcast against
        a block of column vectors in a single numpy expression.
        """
        transposed = self.transposed()
        cols = transposed._data[np.asarray(col_indices, dtype=np.int64)]
        conj = cols & self.row(row_index)[np.newaxis, :]
        return np.bitwise_count(conj).sum(axis=1).astype(np.int64)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return self._num_cols == other._num_cols and np.array_equal(
            self._data, other._data
        )

    def __hash__(self) -> int:  # pragma: no cover
        return id(self)

    def __repr__(self) -> str:
        return (
            f"BitMatrix(num_rows={self.num_rows}, num_cols={self._num_cols}, "
            f"nnz={self.nnz()})"
        )

    def _check_position(self, row: int, col: int) -> None:
        if not 0 <= row < self.num_rows:
            raise GraphError(f"row {row} out of range [0, {self.num_rows})")
        if not 0 <= col < self._num_cols:
            raise GraphError(f"column {col} out of range [0, {self._num_cols})")
