"""Registry of the paper's evaluation datasets (Table II) with synthetic
stand-ins.

The paper evaluates on nine SNAP graphs.  Without network access the raw
SNAP files are unavailable, so every dataset is represented by:

* its **published statistics** (vertices / edges / triangles, straight from
  Table II via :mod:`repro.paperdata`), used for the "paper" columns of
  every reproduced table; and
* a **synthetic stand-in** from the matching generator family in
  :mod:`repro.graph.generators`, used for all measured columns.  Family
  parameters are calibrated so that at ``scale=1.0`` the stand-in matches
  the published vertex count, average degree, and triangle density to
  within small factors (validated by the test-suite).

``scale`` shrinks a stand-in proportionally (same average degree, fewer
vertices) so that benchmarks stay laptop-sized; every benchmark records the
scale it used.  Synthesised graphs are memoised per
``(key, scale, seed)``.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro import paperdata
from repro.errors import GraphError
from repro.graph import generators
from repro.graph.graph import Graph

__all__ = ["DatasetSpec", "SPECS", "list_datasets", "get_dataset", "synthesize"]

#: Generator families (see module docstring).
_FAMILIES = ("ego", "social", "community", "road")


@dataclass(frozen=True)
class DatasetSpec:
    """A paper dataset: published stats plus a calibrated synthetic family."""

    key: str
    display_name: str
    family: str
    stats: paperdata.PaperDatasetStats
    #: Scale used by the repository's benchmarks (keeps runtimes laptop-sized).
    default_bench_scale: float

    @property
    def average_degree(self) -> float:
        """Published average degree ``2m / n``."""
        return 2.0 * self.stats.num_edges / self.stats.num_vertices

    @property
    def triangles_per_edge(self) -> float:
        """Published triangle density ``T / m`` — the family calibration target."""
        return self.stats.num_triangles / self.stats.num_edges

    def default_seed(self) -> int:
        """Stable per-dataset seed (CRC-32 of the key)."""
        return zlib.crc32(self.key.encode("utf-8"))

    def synthesize(self, scale: float = 1.0, seed: int | None = None) -> Graph:
        """Generate the synthetic stand-in at the given scale."""
        return synthesize(self.key, scale=scale, seed=seed)


def _spec(key: str, family: str, default_bench_scale: float) -> DatasetSpec:
    return DatasetSpec(
        key=key,
        display_name=paperdata.DISPLAY_NAMES[key],
        family=family,
        stats=paperdata.TABLE_II[key],
        default_bench_scale=default_bench_scale,
    )


#: All nine paper datasets, in Table II order.
SPECS = {
    "ego-facebook": _spec("ego-facebook", "ego", 1.0),
    "email-enron": _spec("email-enron", "social", 1.0),
    "com-amazon": _spec("com-amazon", "community", 0.15),
    "com-dblp": _spec("com-dblp", "community", 0.15),
    "com-youtube": _spec("com-youtube", "social", 0.04),
    "roadnet-pa": _spec("roadnet-pa", "road", 0.04),
    "roadnet-tx": _spec("roadnet-tx", "road", 0.04),
    "roadnet-ca": _spec("roadnet-ca", "road", 0.04),
    "com-lj": _spec("com-lj", "social", 0.01),
}


def list_datasets() -> tuple[str, ...]:
    """Canonical dataset keys, in the paper's row order."""
    return paperdata.DATASET_ORDER


def get_dataset(key: str) -> DatasetSpec:
    """Look up a dataset spec; raises :class:`GraphError` for unknown keys."""
    try:
        return SPECS[key]
    except KeyError:
        known = ", ".join(sorted(SPECS))
        raise GraphError(f"unknown dataset {key!r}; known datasets: {known}") from None


def synthesize(key: str, scale: float = 1.0, seed: int | None = None) -> Graph:
    """Generate the synthetic stand-in for dataset ``key`` at ``scale``.

    ``scale`` multiplies the vertex count (floored at a family-specific
    minimum); average degree is preserved, so edge and triangle counts
    shrink roughly linearly.  Results are memoised.
    """
    spec = get_dataset(key)
    if scale <= 0 or scale > 1.0:
        raise GraphError(f"scale must be in (0, 1], got {scale}")
    if seed is None:
        seed = spec.default_seed()
    return _synthesize_cached(key, float(scale), int(seed))


@lru_cache(maxsize=64)
def _synthesize_cached(key: str, scale: float, seed: int) -> Graph:
    spec = SPECS[key]
    builder = _FAMILY_BUILDERS[spec.family]
    return builder(spec, scale, seed)


def _build_ego(spec: DatasetSpec, scale: float, seed: int) -> Graph:
    """ego-facebook: dense social circles, average degree ~44."""
    num_vertices = max(300, round(spec.stats.num_vertices * scale))
    circle_size = 45
    num_circles = max(3, num_vertices // circle_size)
    intra_probability = min(0.97, spec.average_degree / (circle_size - 1))
    return generators.ego_network(
        num_vertices,
        num_circles=num_circles,
        intra_circle_probability=intra_probability,
        hub_fraction=0.015,
        seed=seed,
    )


def _build_social(spec: DatasetSpec, scale: float, seed: int) -> Graph:
    """Heavy-tailed social graphs: Holme-Kim backbone + dense clusters.

    The Holme-Kim model alone caps at about two triangles per new edge;
    real social graphs (Table II) reach 3-5 triangles per edge through
    dense friend clusters.  Mixing in fixed-size near-cliques at a rate
    proportional to the vertex count keeps the triangles-per-vertex
    density scale-invariant, so scaled-down stand-ins preserve the
    published density (validated by the calibration tests).
    """
    num_vertices = max(500, round(spec.stats.num_vertices * scale))
    recipe = _SOCIAL_RECIPES[spec.key]
    backbone = generators.powerlaw_cluster(
        num_vertices,
        edges_per_vertex=recipe.backbone_edges_per_vertex,
        triangle_probability=recipe.triangle_probability,
        seed=seed,
    )
    num_cliques = max(1, round(recipe.cliques_per_vertex * num_vertices))
    clusters = generators.community_cliques(
        num_vertices,
        num_communities=num_cliques,
        mean_community_size=recipe.clique_size,
        size_distribution="fixed",
        locality_spread=recipe.clique_locality,
        seed=seed + 1,
    )
    merged = np.concatenate([backbone.edge_array(), clusters.edge_array()], axis=0)
    return Graph(num_vertices, merged)


@dataclass(frozen=True)
class _SocialRecipe:
    """Calibrated mixing parameters for one social dataset.

    ``clique_locality`` is the id-distance scale of the dense clusters:
    SNAP's crawl-ordered ids place community members close together, which
    is what the paper's slice compression exploits (see
    :func:`repro.graph.generators.community_cliques`).
    """

    backbone_edges_per_vertex: int
    triangle_probability: float
    clique_size: int
    cliques_per_vertex: float
    clique_locality: float


#: Calibrated against Table II average degree and triangles-per-vertex.
_SOCIAL_RECIPES = {
    "email-enron": _SocialRecipe(2, 0.6, 20, 0.0136, 64.0),
    "com-youtube": _SocialRecipe(2, 0.6, 10, 0.017, 32.0),
    "com-lj": _SocialRecipe(3, 0.6, 25, 0.01925, 96.0),
}


def _build_community(spec: DatasetSpec, scale: float, seed: int) -> Graph:
    """Co-purchase / co-authorship graphs: overlapping near-cliques."""
    num_vertices = max(500, round(spec.stats.num_vertices * scale))
    if spec.key == "com-amazon":
        mean_size, communities_per_vertex = 3.0, 0.40
    else:  # com-dblp: larger author lists -> larger cliques
        mean_size, communities_per_vertex = 4.0, 0.255
    num_communities = max(10, round(communities_per_vertex * num_vertices))
    return generators.community_cliques(
        num_vertices,
        num_communities=num_communities,
        mean_community_size=mean_size,
        locality_spread=48.0,
        seed=seed,
    )


def _build_road(spec: DatasetSpec, scale: float, seed: int) -> Graph:
    """roadNet-*: perturbed grid with sparse diagonal shortcuts."""
    num_vertices = max(400, round(spec.stats.num_vertices * scale))
    side = max(20, round(math.sqrt(num_vertices)))
    return generators.road_network(
        side,
        side,
        shortcut_probability=0.062,
        removal_probability=0.30,
        seed=seed,
    )


_FAMILY_BUILDERS = {
    "ego": _build_ego,
    "social": _build_social,
    "community": _build_community,
    "road": _build_road,
}
