"""Deterministic synthetic graph generators.

The paper evaluates on nine SNAP graphs (Table II).  This environment has
no network access, so :mod:`repro.graph.datasets` synthesises stand-ins
from the generator families in this module.  Each family reproduces the
structural traits that drive TCIM's behaviour — degree distribution,
triangle density, and the locality of non-zeros that determines the
valid-slice statistics of Section IV-B:

* :func:`ego_network` — dense social-circle graphs (ego-facebook);
* :func:`powerlaw_cluster` — heavy-tailed, high-clustering social graphs
  (email-enron, com-youtube, com-livejournal);
* :func:`community_cliques` — overlapping collaboration/co-purchase
  communities (com-amazon, com-dblp);
* :func:`road_network` — sparse, nearly-planar lattices with very few
  triangles (roadNet-PA/TX/CA);
* classic models (:func:`erdos_renyi`, :func:`barabasi_albert`,
  :func:`watts_strogatz`, :func:`rmat`) and tiny fixtures
  (:func:`complete_graph`, :func:`cycle_graph`, ...) for tests and
  examples.

All generators take an integer ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "powerlaw_cluster",
    "watts_strogatz",
    "rmat",
    "road_network",
    "community_cliques",
    "ego_network",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "complete_bipartite",
    "triangle_free_graph",
]


def erdos_renyi(num_vertices: int, num_edges: int, seed: int = 0) -> Graph:
    """G(n, m): ``num_edges`` distinct uniform edges over ``num_vertices``.

    Oversamples and deduplicates, so construction is vectorised; raises
    :class:`GraphError` if ``num_edges`` exceeds the possible maximum.
    """
    _check_positive(num_vertices, "num_vertices")
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise GraphError(
            f"cannot place {num_edges} edges in a simple graph on "
            f"{num_vertices} vertices (max {max_edges})"
        )
    rng = np.random.default_rng(seed)
    collected = np.empty((0, 2), dtype=np.int64)
    want = num_edges
    while collected.shape[0] < num_edges:
        batch = rng.integers(0, num_vertices, size=(int(want * 1.3) + 16, 2))
        batch = batch[batch[:, 0] != batch[:, 1]]
        lo = np.minimum(batch[:, 0], batch[:, 1])
        hi = np.maximum(batch[:, 0], batch[:, 1])
        keys = np.concatenate(
            [collected[:, 0] * num_vertices + collected[:, 1], lo * num_vertices + hi]
        )
        unique = np.unique(keys)
        collected = np.stack([unique // num_vertices, unique % num_vertices], axis=1)
        want = num_edges - collected.shape[0]
    if collected.shape[0] > num_edges:
        rng.shuffle(collected)
        collected = collected[:num_edges]
    return Graph(num_vertices, collected)


def barabasi_albert(num_vertices: int, edges_per_vertex: int, seed: int = 0) -> Graph:
    """Preferential-attachment graph (the classic BA model).

    Each new vertex attaches to ``edges_per_vertex`` existing vertices
    sampled proportionally to degree (repeated-nodes technique).
    """
    _check_positive(num_vertices, "num_vertices")
    m = edges_per_vertex
    if m < 1 or m >= num_vertices:
        raise GraphError(
            f"edges_per_vertex must be in [1, num_vertices), got {m}"
        )
    rng = np.random.default_rng(seed)
    repeated: list[int] = list(range(m))
    edges: list[tuple[int, int]] = []
    for new_vertex in range(m, num_vertices):
        targets: set[int] = set()
        while len(targets) < m:
            candidate = int(repeated[rng.integers(0, len(repeated))])
            if candidate != new_vertex:
                targets.add(candidate)
        for target in targets:
            edges.append((new_vertex, target))
            repeated.append(new_vertex)
            repeated.append(target)
    return Graph(num_vertices, edges)


def powerlaw_cluster(
    num_vertices: int,
    edges_per_vertex: int,
    triangle_probability: float,
    seed: int = 0,
) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Like :func:`barabasi_albert` but after each preferential attachment a
    triad-closure step connects the new vertex to a random neighbour of the
    previous target with probability ``triangle_probability`` — producing
    the heavy-tailed *and* triangle-rich structure of social networks.
    """
    _check_positive(num_vertices, "num_vertices")
    m = edges_per_vertex
    if m < 1 or m >= num_vertices:
        raise GraphError(f"edges_per_vertex must be in [1, num_vertices), got {m}")
    if not 0.0 <= triangle_probability <= 1.0:
        raise GraphError(
            f"triangle_probability must be in [0, 1], got {triangle_probability}"
        )
    rng = np.random.default_rng(seed)
    repeated: list[int] = list(range(m))
    adjacency: list[set[int]] = [set() for _ in range(num_vertices)]
    edges: list[tuple[int, int]] = []

    def connect(u: int, v: int) -> None:
        adjacency[u].add(v)
        adjacency[v].add(u)
        edges.append((u, v))
        repeated.append(u)
        repeated.append(v)

    for new_vertex in range(m, num_vertices):
        placed = 0
        previous_target: int | None = None
        guard = 0
        while placed < m and guard < 50 * m:
            guard += 1
            close_triad = (
                previous_target is not None
                and adjacency[previous_target]
                and rng.random() < triangle_probability
            )
            if close_triad:
                neighbours = tuple(adjacency[previous_target])
                candidate = int(neighbours[rng.integers(0, len(neighbours))])
            else:
                candidate = int(repeated[rng.integers(0, len(repeated))])
            if candidate == new_vertex or candidate in adjacency[new_vertex]:
                continue
            connect(new_vertex, candidate)
            previous_target = candidate
            placed += 1
    return Graph(num_vertices, edges)


def watts_strogatz(
    num_vertices: int, ring_degree: int, rewire_probability: float, seed: int = 0
) -> Graph:
    """Small-world ring lattice with random rewiring."""
    _check_positive(num_vertices, "num_vertices")
    if ring_degree % 2 or not 0 < ring_degree < num_vertices:
        raise GraphError(
            f"ring_degree must be even and in (0, num_vertices), got {ring_degree}"
        )
    if not 0.0 <= rewire_probability <= 1.0:
        raise GraphError(
            f"rewire_probability must be in [0, 1], got {rewire_probability}"
        )
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    for offset in range(1, ring_degree // 2 + 1):
        for u in range(num_vertices):
            v = (u + offset) % num_vertices
            edges.add((min(u, v), max(u, v)))
    rewired: set[tuple[int, int]] = set()
    for u, v in sorted(edges):
        if rng.random() < rewire_probability:
            for _ in range(16):
                w = int(rng.integers(0, num_vertices))
                candidate = (min(u, w), max(u, w))
                if w != u and candidate not in rewired and candidate not in edges:
                    rewired.add(candidate)
                    break
            else:
                rewired.add((u, v))
        else:
            rewired.add((u, v))
    return Graph(num_vertices, np.array(sorted(rewired), dtype=np.int64))


def rmat(
    scale: int,
    num_edges: int,
    partition: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    seed: int = 0,
) -> Graph:
    """R-MAT / Kronecker generator over ``2**scale`` vertices.

    The Graph500-style recursive quadrant sampler; duplicates and
    self-loops are removed, so the realised edge count can be slightly
    below ``num_edges``.
    """
    if scale < 1 or scale > 30:
        raise GraphError(f"scale must be in [1, 30], got {scale}")
    a, b, c, d = partition
    total = a + b + c + d
    if not np.isclose(total, 1.0, atol=1e-6):
        raise GraphError(f"R-MAT partition must sum to 1, got {total}")
    rng = np.random.default_rng(seed)
    num_vertices = 1 << scale
    rows = np.zeros(num_edges, dtype=np.int64)
    cols = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        draw = rng.random(num_edges)
        go_right = ((draw >= a) & (draw < a + b)) | (draw >= a + b + c)
        go_down = draw >= a + b
        rows |= go_down.astype(np.int64) << (scale - 1 - level)
        cols |= go_right.astype(np.int64) << (scale - 1 - level)
    edges = np.stack([rows, cols], axis=1)
    return Graph(num_vertices, edges)


def road_network(
    grid_rows: int,
    grid_cols: int,
    shortcut_probability: float = 0.03,
    removal_probability: float = 0.05,
    seed: int = 0,
) -> Graph:
    """Road-like nearly-planar network on a perturbed grid.

    A ``grid_rows x grid_cols`` lattice where a small fraction of street
    segments are removed (dead ends, rivers) and a small fraction of
    diagonal shortcuts are added.  Average degree lands near 2.5-2.8 and
    triangles only arise at the diagonal shortcuts — matching the
    extremely low triangles/edge ratio of the SNAP roadNet graphs.
    """
    _check_positive(grid_rows, "grid_rows")
    _check_positive(grid_cols, "grid_cols")
    rng = np.random.default_rng(seed)
    index = np.arange(grid_rows * grid_cols, dtype=np.int64).reshape(
        grid_rows, grid_cols
    )
    horizontal = np.stack(
        [index[:, :-1].ravel(), index[:, 1:].ravel()], axis=1
    )
    vertical = np.stack(
        [index[:-1, :].ravel(), index[1:, :].ravel()], axis=1
    )
    lattice = np.concatenate([horizontal, vertical], axis=0)
    keep = rng.random(lattice.shape[0]) >= removal_probability
    lattice = lattice[keep]
    diagonal = np.stack(
        [index[:-1, :-1].ravel(), index[1:, 1:].ravel()], axis=1
    )
    take = rng.random(diagonal.shape[0]) < shortcut_probability
    edges = np.concatenate([lattice, diagonal[take]], axis=0)
    return Graph(grid_rows * grid_cols, edges)


def community_cliques(
    num_vertices: int,
    num_communities: int,
    mean_community_size: float = 8.0,
    memberships_per_vertex: float = 1.4,
    background_edges: int = 0,
    size_distribution: str = "geometric",
    locality_spread: float | None = None,
    seed: int = 0,
) -> Graph:
    """Overlapping-community graph built from near-cliques.

    Collaboration (com-dblp) and co-purchase (com-amazon) networks are
    unions of small dense groups: each paper's author list or each
    product's co-purchase cluster forms a near-clique.  Communities get
    power-law-ish sizes (geometric with the requested mean — or all equal
    with ``size_distribution="fixed"``), members are drawn with mild
    preferential attachment, and every community is wired as a clique;
    optional uniform background edges add noise.

    ``locality_spread`` emulates the vertex-id locality of real SNAP
    graphs (crawl order clusters communities onto nearby ids): when set,
    each community's members are sampled geometrically around a random
    centre with the given id-distance scale instead of uniformly over all
    vertices.  Id locality concentrates non-zeros into fewer slices and is
    what makes the paper's valid-slice compression so effective
    (Tables III/IV).
    """
    _check_positive(num_vertices, "num_vertices")
    _check_positive(num_communities, "num_communities")
    if mean_community_size < 2:
        raise GraphError(
            f"mean_community_size must be >= 2, got {mean_community_size}"
        )
    rng = np.random.default_rng(seed)
    if size_distribution == "geometric":
        sizes = 2 + rng.geometric(
            1.0 / (mean_community_size - 1), size=num_communities
        )
    elif size_distribution == "fixed":
        sizes = np.full(num_communities, round(mean_community_size), dtype=np.int64)
    else:
        raise GraphError(
            f"size_distribution must be 'geometric' or 'fixed', got {size_distribution!r}"
        )
    sizes = np.minimum(sizes, max(2, num_vertices))
    if locality_spread is not None and locality_spread <= 0:
        raise GraphError(f"locality_spread must be positive, got {locality_spread}")
    weights = np.ones(num_vertices)
    total_memberships = int(memberships_per_vertex * num_vertices)
    del total_memberships  # implied by sizes; kept for API clarity
    edge_chunks: list[np.ndarray] = []
    for size in sizes.tolist():
        if locality_spread is None:
            members = rng.choice(
                num_vertices, size=size, replace=False, p=weights / weights.sum()
            )
            weights[members] += 0.5  # mild preferential attachment across groups
        else:
            members = _local_members(rng, num_vertices, size, locality_spread)
        grid_u, grid_v = np.triu_indices(size, k=1)
        edge_chunks.append(
            np.stack([members[grid_u], members[grid_v]], axis=1)
        )
    if background_edges:
        noise = rng.integers(0, num_vertices, size=(background_edges, 2))
        edge_chunks.append(noise)
    edges = np.concatenate(edge_chunks, axis=0) if edge_chunks else np.empty((0, 2))
    return Graph(num_vertices, edges.astype(np.int64))


def _local_members(
    rng: np.random.Generator, num_vertices: int, size: int, spread: float
) -> np.ndarray:
    """Sample ``size`` distinct vertices geometrically around a random
    centre — the id-locality model used by :func:`community_cliques`."""
    center = int(rng.integers(0, num_vertices))
    members: set[int] = {center}
    while len(members) < min(size, num_vertices):
        offsets = rng.geometric(1.0 / spread, size=4 * size)
        signs = rng.choice((-1, 1), size=offsets.size)
        for candidate in (center + offsets * signs).tolist():
            if 0 <= candidate < num_vertices:
                members.add(int(candidate))
                if len(members) >= size:
                    break
    return np.fromiter(members, dtype=np.int64, count=len(members))


def ego_network(
    num_vertices: int,
    num_circles: int = 12,
    intra_circle_probability: float = 0.35,
    hub_fraction: float = 0.02,
    seed: int = 0,
) -> Graph:
    """Dense social-circle graph in the style of SNAP ego-facebook.

    Vertices are partitioned into ``num_circles`` social circles occupying
    *contiguous id ranges* (SNAP's ego networks number the members of each
    circle together, which is what gives the dataset its id locality);
    edges appear within a circle with high probability and a few hub
    vertices connect across circles.  Produces the high average degree
    (~40) and very high triangle density of the facebook ego networks.
    """
    _check_positive(num_vertices, "num_vertices")
    _check_positive(num_circles, "num_circles")
    if not 0.0 < intra_circle_probability <= 1.0:
        raise GraphError(
            "intra_circle_probability must be in (0, 1], got "
            f"{intra_circle_probability}"
        )
    rng = np.random.default_rng(seed)
    circle_of = np.sort(rng.integers(0, num_circles, size=num_vertices))
    edge_chunks: list[np.ndarray] = []
    for circle in range(num_circles):
        members = np.flatnonzero(circle_of == circle)
        if members.size < 2:
            continue
        grid_u, grid_v = np.triu_indices(members.size, k=1)
        take = rng.random(grid_u.size) < intra_circle_probability
        edge_chunks.append(
            np.stack([members[grid_u[take]], members[grid_v[take]]], axis=1)
        )
    num_hubs = max(1, int(hub_fraction * num_vertices))
    hubs = rng.choice(num_vertices, size=num_hubs, replace=False)
    for hub in hubs.tolist():
        spokes = rng.choice(num_vertices, size=min(60, num_vertices - 1), replace=False)
        spokes = spokes[spokes != hub]
        edge_chunks.append(
            np.stack([np.full(spokes.size, hub, dtype=np.int64), spokes], axis=1)
        )
    edges = np.concatenate(edge_chunks, axis=0) if edge_chunks else np.empty((0, 2))
    return Graph(num_vertices, edges.astype(np.int64))


# ----------------------------------------------------------------------
# Small deterministic fixtures
# ----------------------------------------------------------------------
def complete_graph(num_vertices: int) -> Graph:
    """K_n — every pair connected; has C(n, 3) triangles."""
    _check_positive(num_vertices, "num_vertices")
    u, v = np.triu_indices(num_vertices, k=1)
    return Graph(num_vertices, np.stack([u, v], axis=1))


def cycle_graph(num_vertices: int) -> Graph:
    """C_n — a simple cycle; one triangle iff n == 3."""
    _check_positive(num_vertices, "num_vertices")
    vertices = np.arange(num_vertices, dtype=np.int64)
    edges = np.stack([vertices, (vertices + 1) % num_vertices], axis=1)
    return Graph(num_vertices, edges)


def path_graph(num_vertices: int) -> Graph:
    """P_n — a simple path; triangle-free."""
    _check_positive(num_vertices, "num_vertices")
    vertices = np.arange(num_vertices - 1, dtype=np.int64)
    return Graph(num_vertices, np.stack([vertices, vertices + 1], axis=1))


def star_graph(num_leaves: int) -> Graph:
    """Star with one hub and ``num_leaves`` leaves; triangle-free."""
    _check_positive(num_leaves, "num_leaves")
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    return Graph(num_leaves + 1, np.stack([np.zeros_like(leaves), leaves], axis=1))


def complete_bipartite(left: int, right: int) -> Graph:
    """K_{left,right} — bipartite, hence triangle-free."""
    _check_positive(left, "left")
    _check_positive(right, "right")
    left_ids = np.repeat(np.arange(left, dtype=np.int64), right)
    right_ids = np.tile(np.arange(left, left + right, dtype=np.int64), left)
    return Graph(left + right, np.stack([left_ids, right_ids], axis=1))


def triangle_free_graph(num_vertices: int, num_edges: int, seed: int = 0) -> Graph:
    """Random bipartite (hence triangle-free) graph — a negative control."""
    _check_positive(num_vertices, "num_vertices")
    half = num_vertices // 2
    if half < 1 or num_vertices - half < 1:
        raise GraphError("need at least 2 vertices for a bipartite graph")
    max_edges = half * (num_vertices - half)
    if num_edges > max_edges:
        raise GraphError(
            f"cannot place {num_edges} edges in K_{{{half},{num_vertices - half}}}"
        )
    rng = np.random.default_rng(seed)
    seen: set[tuple[int, int]] = set()
    while len(seen) < num_edges:
        u = int(rng.integers(0, half))
        v = int(rng.integers(half, num_vertices))
        seen.add((u, v))
    return Graph(num_vertices, np.array(sorted(seen), dtype=np.int64))


def _check_positive(value: int, name: str) -> None:
    if value <= 0:
        raise GraphError(f"{name} must be positive, got {value}")
