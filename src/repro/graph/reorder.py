"""Vertex reordering for slice locality (data-mapping extension).

The effectiveness of the paper's valid-slice compression (Section IV-B)
depends on how tightly each row's non-zeros cluster in the id space: SNAP
graphs arrive crawl-ordered, which concentrates communities onto nearby
ids.  When a graph arrives with scrambled ids, a locality-restoring
permutation recovers most of the compression — the natural companion to
the paper's "customized graph slicing and mapping techniques".

Orderings provided:

* :func:`bfs_order` — breadth-first traversal from a pseudo-peripheral
  start; neighbours receive nearby labels;
* :func:`reverse_cuthill_mckee` — BFS with degree-sorted tie-breaking,
  reversed; the classic bandwidth-minimising ordering;
* :func:`degree_order` — plain degree sort (the standard TC preprocessing,
  useful as a contrast: it helps intersection algorithms but does little
  for slice locality).

Each returns a permutation array suitable for :meth:`Graph.relabel`, and
:func:`apply_ordering` is a convenience that relabels directly.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph

__all__ = [
    "bfs_order",
    "reverse_cuthill_mckee",
    "degree_order",
    "apply_ordering",
    "ORDERINGS",
]


def _traversal_order(graph: Graph, sort_neighbours_by_degree: bool) -> np.ndarray:
    """Visit order of a full BFS covering every component.

    Components are entered at their minimum-degree vertex (a cheap
    pseudo-peripheral heuristic); neighbours are expanded in id order or
    ascending-degree order.
    """
    n = graph.num_vertices
    degrees = graph.degrees()
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    # Seed priority: ascending degree so chains/peripheries start traversals.
    seeds = np.argsort(degrees, kind="stable")
    indptr, indices = graph.csr
    for seed in seeds.tolist():
        if visited[seed]:
            continue
        visited[seed] = True
        queue = deque([seed])
        while queue:
            vertex = queue.popleft()
            order.append(vertex)
            neighbours = indices[indptr[vertex]: indptr[vertex + 1]]
            fresh = neighbours[~visited[neighbours]]
            if fresh.size:
                if sort_neighbours_by_degree:
                    fresh = fresh[np.argsort(degrees[fresh], kind="stable")]
                visited[fresh] = True
                queue.extend(fresh.tolist())
    return np.asarray(order, dtype=np.int64)


def _order_to_permutation(order: np.ndarray) -> np.ndarray:
    """Convert a visit order (old ids in new order) into a permutation
    mapping old id -> new id (the :meth:`Graph.relabel` convention)."""
    permutation = np.empty(order.size, dtype=np.int64)
    permutation[order] = np.arange(order.size)
    return permutation


def bfs_order(graph: Graph) -> np.ndarray:
    """Permutation labelling vertices in BFS visit order."""
    if graph.num_vertices == 0:
        return np.empty(0, dtype=np.int64)
    return _order_to_permutation(_traversal_order(graph, False))


def reverse_cuthill_mckee(graph: Graph) -> np.ndarray:
    """Reverse Cuthill-McKee permutation (bandwidth minimisation)."""
    if graph.num_vertices == 0:
        return np.empty(0, dtype=np.int64)
    order = _traversal_order(graph, True)[::-1]
    return _order_to_permutation(order)


def degree_order(graph: Graph, descending: bool = False) -> np.ndarray:
    """Permutation sorting vertices by degree."""
    order = np.argsort(graph.degrees(), kind="stable")
    if descending:
        order = order[::-1]
    return _order_to_permutation(order)


#: Name -> permutation function, for sweeps and the CLI.
ORDERINGS = {
    "identity": lambda graph: np.arange(graph.num_vertices, dtype=np.int64),
    "bfs": bfs_order,
    "rcm": reverse_cuthill_mckee,
    "degree": degree_order,
}


def apply_ordering(graph: Graph, name: str) -> Graph:
    """Relabel ``graph`` with the named ordering."""
    try:
        ordering = ORDERINGS[name]
    except KeyError:
        known = ", ".join(sorted(ORDERINGS))
        raise GraphError(f"unknown ordering {name!r}; known: {known}") from None
    return graph.relabel(ordering(graph))
